package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"benchpress/internal/core"
)

// Synthesizer replays scaled variants of a captured profile: it derives the
// live arrival spec a manager runs under, the mixture for the source
// benchmark's procedure order, and offline arrival schedules for
// conformance checking.
type Synthesizer struct {
	// Profile is the source workload profile.
	Profile *Profile
	// Amplify is the "×N users" dial (default 1).
	Amplify float64
	// Process overrides the arrival process kind; "" picks Poisson when the
	// captured gaps look exponential-or-burstier (CV >= 0.5) and uniform
	// otherwise, mirroring how the trace actually arrived.
	Process string
	// Skew is the hot-key dial in [0,1], forwarded into the arrival spec.
	Skew float64
}

// NewSynthesizer builds a synthesizer over a validated profile.
func NewSynthesizer(p *Profile, amplify float64) (*Synthesizer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if amplify <= 0 {
		amplify = 1
	}
	return &Synthesizer{Profile: p, Amplify: amplify}, nil
}

// TargetRate is the synthesized aggregate arrival rate.
func (s *Synthesizer) TargetRate() float64 { return s.Profile.Rate * s.amplify() }

func (s *Synthesizer) amplify() float64 {
	if s.Amplify <= 0 {
		return 1
	}
	return s.Amplify
}

// process resolves the arrival process kind.
func (s *Synthesizer) process() string {
	if s.Process != "" {
		return s.Process
	}
	if s.Profile.InterArrivalCV >= 0.5 {
		return core.ProcessPoisson
	}
	return core.ProcessUniform
}

// Spec derives the live arrival spec: the profile's observed rate as the
// base, the amplification as the multiplier, and the resolved process.
func (s *Synthesizer) Spec() core.ArrivalSpec {
	return core.ArrivalSpec{
		Process:    s.process(),
		BaseRate:   s.Profile.Rate,
		Multiplier: s.amplify(),
		Skew:       s.Skew,
	}
}

// MixFor maps the profile's captured proportions onto a benchmark's
// procedure order by transaction-type name. Procedures the capture never
// saw get weight zero; profile types the benchmark lacks are an error.
func (s *Synthesizer) MixFor(b core.Benchmark) ([]float64, error) {
	procs := b.Procedures()
	idx := make(map[string]int, len(procs))
	for i, p := range procs {
		idx[p.Name] = i
	}
	mix := make([]float64, len(procs))
	matched := 0
	for _, t := range s.Profile.Types {
		i, ok := idx[t.Name]
		if !ok {
			return nil, fmt.Errorf("synth: profile type %q not among %s procedures", t.Name, b.Name())
		}
		mix[i] = t.Proportion
		matched++
	}
	if matched == 0 {
		return nil, fmt.Errorf("synth: profile shares no transaction types with %s", b.Name())
	}
	return mix, nil
}

// Schedule draws n synthetic inter-arrival gaps (microseconds) by
// inverse-transform sampling the profile's empirical inter-arrival CDF,
// compressed by the amplification factor — ×N users means gaps N times
// tighter. The draw is deterministic per seed; the conformance tests hold
// the result to a KS tolerance against the source sample.
func (s *Synthesizer) Schedule(n int, seed int64) []int64 {
	src := s.Profile.InterArrivalUS
	out := make([]int64, 0, n)
	rng := rand.New(rand.NewSource(seed))
	amp := s.amplify()
	if len(src) == 0 {
		// No captured CDF (tiny capture): fall back to exponential gaps at
		// the profile rate.
		mean := 1e6 / (s.Profile.Rate * amp)
		for i := 0; i < n; i++ {
			out = append(out, int64(rng.ExpFloat64()*mean))
		}
		return out
	}
	for i := 0; i < n; i++ {
		// Continuous inverse CDF: pick a point uniformly along the sorted
		// sample and interpolate between neighbors.
		u := rng.Float64() * float64(len(src)-1)
		lo := int(u)
		frac := u - float64(lo)
		gap := float64(src[lo])
		if lo+1 < len(src) {
			gap += frac * float64(src[lo+1]-src[lo])
		}
		out = append(out, int64(gap/amp))
	}
	return out
}

// SortedSchedule is Schedule with the gaps sorted ascending, ready for KS
// comparison.
func (s *Synthesizer) SortedSchedule(n int, seed int64) []int64 {
	gaps := s.Schedule(n, seed)
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}

// ScaleGaps multiplies a sorted gap sample by k (used to undo amplification
// before comparing a synthesized schedule against its source CDF).
func ScaleGaps(gaps []int64, k float64) []int64 {
	out := make([]int64, len(gaps))
	for i, g := range gaps {
		out[i] = int64(float64(g) * k)
	}
	return out
}
