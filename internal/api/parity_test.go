package api

import (
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// routeSpan matches a documented route inside a backtick code span, with
// optional combined verbs: `GET /api/v1/workloads` or
// `GET | POST /api/v1/workloads/{name}/rate`.
var routeSpan = regexp.MustCompile("`((?:GET|POST|PUT|PATCH|DELETE)(?: \\| (?:GET|POST|PUT|PATCH|DELETE))*) (/[^`]*)`")

// docRoutes parses API.md and returns two sets of "METHOD /path" strings:
// the Route index table rows, and every route span anywhere in the document
// (section headings, prose, the legacy table). Combined verbs are expanded
// and query-string suffixes stripped.
func docRoutes(t *testing.T) (index, prose map[string]bool) {
	t.Helper()
	data, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatal(err)
	}
	index, prose = map[string]bool{}, map[string]bool{}
	inIndex := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inIndex = strings.HasPrefix(line, "## Route index")
		}
		for _, m := range routeSpan.FindAllStringSubmatch(line, -1) {
			path := m[2]
			if i := strings.IndexByte(path, '?'); i >= 0 {
				path = path[:i]
			}
			for _, verb := range strings.Split(m[1], " | ") {
				key := verb + " " + path
				prose[key] = true
				if inIndex {
					index[key] = true
				}
			}
		}
	}
	return index, prose
}

// registeredRoutes returns "METHOD /pattern" for every route the server
// registers, versioned and deprecated alike.
func registeredRoutes(s *Server) map[string]bool {
	got := map[string]bool{}
	for _, rt := range s.Routes() {
		got[rt.Method+" "+rt.Pattern] = true
	}
	for _, a := range s.aliases() {
		got[a.Method+" "+a.Pattern] = true
	}
	return got
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestRouteDocParity holds API.md's Route index and the route table in
// internal/api/routes.go in exact sync, in both directions: an endpoint
// cannot exist undocumented, and documentation cannot reference an
// endpoint that is not registered.
func TestRouteDocParity(t *testing.T) {
	index, prose := docRoutes(t)
	registered := registeredRoutes(NewServer(nil))
	if len(index) == 0 {
		t.Fatal("API.md Route index parsed to zero routes")
	}

	for _, key := range sortedKeys(registered) {
		if !index[key] {
			t.Errorf("undocumented route: %s is registered but missing from the API.md Route index", key)
		}
	}
	for _, key := range sortedKeys(index) {
		if !registered[key] {
			t.Errorf("phantom documentation: API.md Route index lists %s but the server does not register it", key)
		}
	}
	// Any route mentioned in prose (section headings, the deprecation table)
	// must exist too — catches stale examples after a rename.
	for _, key := range sortedKeys(prose) {
		if !registered[key] {
			t.Errorf("stale reference: API.md mentions %s but the server does not register it", key)
		}
	}
}

// TestDocumentedRoutesResolve walks every documented route against the
// actual mux: with placeholders substituted, each must resolve to its own
// registered pattern — not the catch-all 404 or a method-less fallback.
func TestDocumentedRoutesResolve(t *testing.T) {
	index, _ := docRoutes(t)
	mux, ok := NewServer(nil).Handler().(*http.ServeMux)
	if !ok {
		t.Fatal("Handler is not a *http.ServeMux")
	}
	fill := strings.NewReplacer("{name}", "w1", "{id}", "p1")
	for _, key := range sortedKeys(index) {
		method, pattern, _ := strings.Cut(key, " ")
		req := httptest.NewRequest(method, fill.Replace(pattern), nil)
		_, got := mux.Handler(req)
		want := method + " " + pattern
		if got != want {
			t.Errorf("%s resolves to %q, want %q", key, got, want)
		}
	}
}
