package api

import (
	"fmt"
	"net/http"
	"strings"
)

// Route is one versioned API endpoint: an HTTP method plus a Go 1.22
// ServeMux path pattern. The route table is the single source of truth for
// the mux — Handler registers exactly these (plus the deprecated flat
// aliases below), and the documentation-parity test walks the same table
// against API.md, so an endpoint cannot exist undocumented or be documented
// without existing.
type Route struct {
	Method  string
	Pattern string
	handler http.HandlerFunc
}

// Routes returns the versioned route table.
func (s *Server) Routes() []Route {
	return []Route{
		// Workload resources.
		{"GET", "/api/v1/workloads", s.v1ListWorkloads},
		{"POST", "/api/v1/workloads", s.v1CreateWorkload},
		{"GET", "/api/v1/workloads/{name}", s.v1Status},
		{"DELETE", "/api/v1/workloads/{name}", s.v1DeleteWorkload},
		{"GET", "/api/v1/workloads/{name}/windows", s.v1Windows},
		{"GET", "/api/v1/workloads/{name}/stream", s.v1Stream},
		{"GET", "/api/v1/workloads/{name}/rate", s.v1GetRate},
		{"POST", "/api/v1/workloads/{name}/rate", s.v1SetRate},
		{"GET", "/api/v1/workloads/{name}/mixture", s.v1GetMixture},
		{"POST", "/api/v1/workloads/{name}/mixture", s.v1SetMixture},
		{"POST", "/api/v1/workloads/{name}/pause", s.v1Pause},
		{"POST", "/api/v1/workloads/{name}/resume", s.v1Resume},

		// Workload synthesis: live capture control and the arrival-process
		// dial on a workload, plus the stored-profile registry.
		{"GET", "/api/v1/workloads/{name}/capture", s.v1GetCapture},
		{"POST", "/api/v1/workloads/{name}/capture", s.v1StartCapture},
		{"DELETE", "/api/v1/workloads/{name}/capture", s.v1FinishCapture},
		{"GET", "/api/v1/workloads/{name}/arrival", s.v1GetArrival},
		{"POST", "/api/v1/workloads/{name}/arrival", s.v1SetArrival},
		{"GET", "/api/v1/profiles", s.v1ListProfiles},
		{"POST", "/api/v1/profiles", s.v1UploadProfile},
		{"GET", "/api/v1/profiles/{id}", s.v1GetProfile},
		{"DELETE", "/api/v1/profiles/{id}", s.v1DeleteProfile},

		// Cluster coordination (answers 404 unless EnableCluster was called).
		{"GET", "/api/v1/cluster", s.v1ClusterStatus},
		{"GET", "/api/v1/cluster/workers", s.v1ClusterWorkers},
		{"POST", "/api/v1/cluster/workers", s.v1ClusterRegister},
		{"DELETE", "/api/v1/cluster/workers/{id}", s.v1ClusterEvict},
		{"GET", "/api/v1/cluster/rate", s.v1ClusterGetRate},
		{"POST", "/api/v1/cluster/rate", s.v1ClusterSetRate},
		{"GET", "/api/v1/cluster/mixture", s.v1ClusterGetMixture},
		{"POST", "/api/v1/cluster/mixture", s.v1ClusterSetMixture},
		{"POST", "/api/v1/cluster/pause", s.v1ClusterPause},
		{"POST", "/api/v1/cluster/resume", s.v1ClusterResume},
		{"GET", "/api/v1/cluster/windows", s.v1ClusterWindows},
		{"GET", "/api/v1/cluster/stream", s.v1ClusterStream},

		// Observability.
		{"GET", "/metrics", s.handleMetrics},
	}
}

// aliasRoute is a deprecated flat route kept for existing clients, with the
// v1 resource that supersedes it.
type aliasRoute struct {
	Method    string
	Pattern   string
	Successor string
	handler   http.HandlerFunc
}

// aliases returns the deprecated flat routes (the TUI's polling page and
// recorded scripts). Each answers with a Deprecation header naming its
// successor resource.
func (s *Server) aliases() []aliasRoute {
	return []aliasRoute{
		{"GET", "/status", "/api/v1/workloads/{name}", s.handleStatus},
		{"GET", "/workloads", "/api/v1/workloads", s.handleWorkloads},
		{"GET", "/windows", "/api/v1/workloads/{name}/windows", s.handleWindows},
		{"POST", "/rate", "/api/v1/workloads/{name}/rate", s.handleRate},
		{"POST", "/mixture", "/api/v1/workloads/{name}/mixture", s.handleMixture},
		{"POST", "/pause", "/api/v1/workloads/{name}/pause", s.handlePause},
		{"POST", "/resume", "/api/v1/workloads/{name}/resume", s.handleResume},
		{"POST", "/benchmark", "/api/v1/workloads", s.handleStartBenchmark},
	}
}

// Handler returns the HTTP mux implementing the API, built from the route
// table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	// Register every route, collecting the method set per path so the
	// method-less fallback can answer wrong-method requests with a JSON 405
	// and an explicit Allow header instead of the mux's text/plain one.
	methods := map[string][]string{}
	var order []string
	for _, rt := range s.Routes() {
		mux.HandleFunc(rt.Method+" "+rt.Pattern, rt.handler)
		if _, seen := methods[rt.Pattern]; !seen {
			order = append(order, rt.Pattern)
		}
		methods[rt.Pattern] = append(methods[rt.Pattern], rt.Method)
	}
	for _, a := range s.aliases() {
		mux.HandleFunc(a.Method+" "+a.Pattern, deprecated(a.Successor, a.handler))
		if _, seen := methods[a.Pattern]; !seen {
			order = append(order, a.Pattern)
		}
		methods[a.Pattern] = append(methods[a.Pattern], a.Method)
	}
	for _, pattern := range order {
		mux.HandleFunc(pattern, allowOnly(strings.Join(methods[pattern], ", ")))
	}

	// Everything else is a JSON 404 rather than the mux's text/plain one.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: no such resource %s", r.URL.Path))
	})
	return mux
}

// deprecated marks a legacy flat route with standard deprecation headers.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}
