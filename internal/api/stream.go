package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"benchpress/internal/stats"
)

// StreamFrame is one Server-Sent-Events payload: a finalized throughput
// window with its latency digest, per transaction type and overall.
type StreamFrame struct {
	Workload string `json:"workload"`
	WindowPoint
	Errors int64        `json:"errors"`
	Types  []TypeWindow `json:"types,omitempty"`
	// Arrival carries the live arrival-process state on single-workload
	// streams, so a mid-run POST .../arrival is visible in the next frame
	// (absent on merged cluster streams).
	Arrival *ArrivalState `json:"arrival,omitempty"`
}

// TypeWindow is a per-transaction-type digest within one window.
type TypeWindow struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// v1Stream serves GET /api/v1/workloads/{name}/stream: one SSE "window"
// event per completed collection window, starting at ?from= (default 0,
// i.e. replay history first). Rotation is pull-driven — reading windows
// forces the collector to finalize elapsed ones — so frames keep flowing
// at one per window even when the workload is paused or idle; subscriber
// signals from the collector deliver fresh windows promptly without the
// handler ever blocking rotation. Heartbeat comments cover ticks with
// nothing new. The handler owns no goroutines: client disconnect unwinds
// it via the request context.
func (s *Server) v1Stream(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("api: streaming unsupported by this connection"))
		return
	}
	next := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("api: invalid from=%q", f))
			return
		}
		next = n
	}
	c := m.Collector()
	sig, cancel := c.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	dur := c.WindowDuration()
	ticker := time.NewTicker(dur)
	defer ticker.Stop()
	enc := json.NewEncoder(w)
	ended := false
	for {
		wins := c.WindowsSince(next) // forces rotation: frames even while paused
		for _, win := range wins {
			fmt.Fprintf(w, "id: %d\nevent: window\ndata: ", win.Index)
			frame := streamFrame(m.Name(), c.Types(), win, dur)
			ar := arrivalStateOf("", m.Arrival(), m.EffectiveRate())
			frame.Arrival = &ar
			enc.Encode(frame) // Encode appends the \n
			fmt.Fprint(w, "\n")
			next = win.Index + 1
		}
		if len(wins) == 0 {
			// Nothing rotated since the last tick (e.g. the collector
			// window is longer than our ticker): SSE comment heartbeat
			// keeps the connection visibly alive.
			fmt.Fprint(w, ": heartbeat\n\n")
		}
		if ended {
			fmt.Fprint(w, "event: end\ndata: {}\n\n")
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-m.Done():
			// Run finished: loop once more to drain the final windows,
			// then emit the end event.
			ended = true
		case <-sig:
		case <-ticker.C:
		}
	}
}

func streamFrame(workload string, types []string, win stats.Window, dur time.Duration) StreamFrame {
	f := StreamFrame{
		Workload:    workload,
		WindowPoint: pointOf(win, dur),
		Errors:      win.Errors,
	}
	for i, tl := range win.TypeLat {
		if tl.Count == 0 || i >= len(types) {
			continue
		}
		f.Types = append(f.Types, TypeWindow{
			Name:  types[i],
			Count: tl.Count,
			P50MS: msOf(tl.P50),
			P95MS: msOf(tl.P95),
			P99MS: msOf(tl.P99),
		})
	}
	return f
}
