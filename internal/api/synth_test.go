package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/synth"
)

// startSynthServer is startTestServer but also returning the Server, so
// synthesis tests can wire StartWorkload and inspect stored profiles.
func startSynthServer(t *testing.T) (*httptest.Server, *Server, *core.Manager, context.CancelFunc) {
	t.Helper()
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	b := &apiBench{}
	if err := core.Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: time.Hour, Rate: 300}}, core.Options{Terminals: 2, Name: "w1"})
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx)
	srv := NewServer(nil, m)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, m, cancel
}

func TestV1CaptureLifecycle(t *testing.T) {
	ts, _, m, cancel := startSynthServer(t)
	defer cancel()
	base := ts.URL + "/api/v1/workloads/w1/capture"

	// No capture yet.
	resp, data := doReq(t, "GET", base, "", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("GET before start: %d %s", resp.StatusCode, data)
	}

	// Start capturing (empty body → default sampling stride).
	resp, data = doReq(t, "POST", base, "", nil)
	if resp.StatusCode != 201 {
		t.Fatalf("POST: %d %s", resp.StatusCode, data)
	}
	if !m.Capturing() {
		t.Fatal("manager not capturing after POST")
	}

	// Double start conflicts.
	resp, data = doReq(t, "POST", base, "", nil)
	if resp.StatusCode != 409 || decodeEnvelope(t, data) != "conflict" {
		t.Fatalf("second POST: %d %s", resp.StatusCode, data)
	}

	// Let the capture see some traffic, then check live status.
	time.Sleep(800 * time.Millisecond)
	var st CaptureResponse
	getJSON(t, base, &st)
	if st.Workload != "w1" || st.Benchmark != "apibench" || st.Entries == 0 {
		t.Fatalf("capture status: %+v", st)
	}

	// Finish into a stored profile.
	resp, data = doReq(t, "DELETE", base, "", nil)
	if resp.StatusCode != 201 {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, data)
	}
	var p synth.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatal(err)
	}
	if p.ID != "p1" || p.Benchmark != "apibench" || p.Rate <= 0 || len(p.Types) == 0 {
		t.Fatalf("profile: %+v", p)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/profiles/p1" {
		t.Fatalf("location: %q", loc)
	}
	if m.Capturing() {
		t.Fatal("manager still capturing after DELETE")
	}

	// Capture is gone; the profile is listed and retrievable.
	resp, _ = doReq(t, "GET", base, "", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("GET after finish: %d", resp.StatusCode)
	}
	var list ProfileList
	getJSON(t, ts.URL+"/api/v1/profiles", &list)
	if len(list.Profiles) != 1 || list.Profiles[0].ID != "p1" || list.Profiles[0].Attempts == 0 {
		t.Fatalf("profile list: %+v", list)
	}
	var full synth.Profile
	getJSON(t, ts.URL+"/api/v1/profiles/p1", &full)
	if full.ID != "p1" || len(full.InterArrivalUS) == 0 {
		t.Fatalf("stored profile: %+v", full)
	}

	// Delete the profile.
	resp, _ = doReq(t, "DELETE", ts.URL+"/api/v1/profiles/p1", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE profile: %d", resp.StatusCode)
	}
	resp, data = doReq(t, "GET", ts.URL+"/api/v1/profiles/p1", "", nil)
	if resp.StatusCode != 404 || decodeEnvelope(t, data) != "not_found" {
		t.Fatalf("GET deleted profile: %d %s", resp.StatusCode, data)
	}
}

func TestV1CaptureDiscard(t *testing.T) {
	ts, _, m, cancel := startSynthServer(t)
	defer cancel()
	base := ts.URL + "/api/v1/workloads/w1/capture"
	if resp, data := doReq(t, "POST", base, "", nil); resp.StatusCode != 201 {
		t.Fatalf("POST: %d %s", resp.StatusCode, data)
	}
	resp, data := doReq(t, "DELETE", base+"?discard=true", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE discard: %d %s", resp.StatusCode, data)
	}
	if m.Capturing() {
		t.Fatal("still capturing after discard")
	}
	var list ProfileList
	getJSON(t, ts.URL+"/api/v1/profiles", &list)
	if len(list.Profiles) != 0 {
		t.Fatalf("discard stored a profile: %+v", list)
	}
}

func TestV1ProfileUpload(t *testing.T) {
	ts, _, _, cancel := startSynthServer(t)
	defer cancel()

	// The shipped example profile must upload cleanly.
	data, err := os.ReadFile("../../configs/profile_example.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, "POST", ts.URL+"/api/v1/profiles", "application/json", data)
	if resp.StatusCode != 201 {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var p synth.Profile
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	// The server assigns its own id, ignoring the one in the file.
	if p.ID != "p1" || p.Benchmark != "ycsb" {
		t.Fatalf("uploaded profile: %+v", p)
	}

	// An invalid profile is rejected with the envelope.
	resp, body = doReq(t, "POST", ts.URL+"/api/v1/profiles", "application/json",
		[]byte(`{"benchmark":"ycsb","rate":0,"types":[]}`))
	if resp.StatusCode != 400 || decodeEnvelope(t, body) != "bad_request" {
		t.Fatalf("invalid upload: %d %s", resp.StatusCode, body)
	}
}

func TestV1ArrivalResource(t *testing.T) {
	ts, _, m, cancel := startSynthServer(t)
	defer cancel()
	base := ts.URL + "/api/v1/workloads/w1/arrival"

	// Closed loop by default, reporting the rate target as the base.
	var st ArrivalState
	getJSON(t, base, &st)
	if st.Process != "closed" || st.BaseRate != 300 || st.EffectiveRate != 300 {
		t.Fatalf("default arrival: %+v", st)
	}

	// Install a Poisson process with amplification.
	code := postJSON(t, base, map[string]any{
		"process": "poisson", "base_rate": 100.0, "multiplier": 2.0}, &st)
	if code != 200 {
		t.Fatalf("POST: %d", code)
	}
	if st.Process != "poisson" || st.BaseRate != 100 || st.Multiplier != 2 || st.EffectiveRate != 200 {
		t.Fatalf("installed arrival: %+v", st)
	}
	if got := m.Arrival(); got.Process != core.ProcessPoisson {
		t.Fatalf("manager arrival: %+v", got)
	}

	// Re-dialing the multiplier inherits the base rate.
	code = postJSON(t, base, map[string]any{"process": "poisson", "multiplier": 5.0}, &st)
	if code != 200 || st.BaseRate != 100 || st.EffectiveRate != 500 {
		t.Fatalf("inherited base: %d %+v", code, st)
	}

	// Status and stream-visible state reflect the process.
	var full StatusResponse
	getJSON(t, ts.URL+"/api/v1/workloads/w1", &full)
	if full.Arrival == nil || full.Arrival.Process != "poisson" || full.Arrival.EffectiveRate != 500 {
		t.Fatalf("status arrival: %+v", full.Arrival)
	}

	// apiBench has no skew dial: a skewed spec is rejected and the previous
	// spec stays installed.
	resp, data := doReq(t, "POST", base, "application/json",
		[]byte(`{"process":"poisson","base_rate":50,"skew":0.5}`))
	if resp.StatusCode != 400 || decodeEnvelope(t, data) != "bad_request" {
		t.Fatalf("skew on non-skewable: %d %s", resp.StatusCode, data)
	}
	// Unknown process kind is rejected too.
	resp, data = doReq(t, "POST", base, "application/json",
		[]byte(`{"process":"warp","base_rate":50}`))
	if resp.StatusCode != 400 {
		t.Fatalf("bad process: %d %s", resp.StatusCode, data)
	}

	// A closed spec uninstalls the process.
	code = postJSON(t, base, map[string]any{"process": "closed"}, &st)
	if code != 200 || st.Process != "closed" {
		t.Fatalf("uninstall: %d %+v", code, st)
	}
}

func TestV1CreateWorkloadWithProfile(t *testing.T) {
	ts, srv, m, cancel := startSynthServer(t)
	defer cancel()

	var got StartRequest
	srv.StartWorkload = func(req StartRequest) (*core.Manager, error) {
		got = req
		return m, nil // reuse the running manager; the hook is what's under test
	}

	// Unknown profile id → 404 before the hook runs.
	resp, data := doReq(t, "POST", ts.URL+"/api/v1/workloads", "application/json",
		[]byte(`{"benchmark":"synthetic","profile":"nope"}`))
	if resp.StatusCode != 404 || decodeEnvelope(t, data) != "not_found" {
		t.Fatalf("unknown profile: %d %s", resp.StatusCode, data)
	}

	// Upload a profile, then start a synthetic workload from it.
	example, err := os.ReadFile("../../configs/profile_example.json")
	if err != nil {
		t.Fatal(err)
	}
	if resp, data := doReq(t, "POST", ts.URL+"/api/v1/profiles", "application/json", example); resp.StatusCode != 201 {
		t.Fatalf("upload: %d %s", resp.StatusCode, data)
	}
	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads", "application/json",
		[]byte(`{"benchmark":"synthetic","profile":"p1","amplify":10,"process":"poisson"}`))
	if resp.StatusCode != 201 {
		t.Fatalf("create: %d %s", resp.StatusCode, data)
	}
	if got.ResolvedProfile == nil || got.ResolvedProfile.Benchmark != "ycsb" {
		t.Fatalf("hook request: %+v", got)
	}
	if got.Amplify != 10 || got.Process != "poisson" {
		t.Fatalf("dials not threaded: %+v", got)
	}
}

func TestStreamCarriesArrival(t *testing.T) {
	ts, _, _, cancel := startSynthServer(t)
	defer cancel()

	// Dial a burst process, then expect the next frames to carry it.
	var st ArrivalState
	if code := postJSON(t, ts.URL+"/api/v1/workloads/w1/arrival", map[string]any{
		"process": "burst", "base_rate": 200.0}, &st); code != 200 {
		t.Fatalf("POST arrival: %d", code)
	}
	resp, err := http.Get(ts.URL + "/api/v1/workloads/w1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(t, resp.Body, 2, 10*time.Second)
	seen := false
	for _, f := range frames {
		if f.event != "window" {
			continue
		}
		var sf StreamFrame
		if err := json.Unmarshal([]byte(f.data), &sf); err != nil {
			t.Fatalf("frame %q: %v", f.data, err)
		}
		if sf.Arrival == nil {
			t.Fatalf("frame without arrival: %s", f.data)
		}
		if sf.Arrival.Process == "burst" && sf.Arrival.BaseRate == 200 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no frame carried the burst arrival spec")
	}
}
