package api

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/synth"
)

// defaultSampleEvery is the parameter-sampling stride a capture starts with
// when the request does not choose one: 1-in-8 attempts carry their
// statement arguments into the profile's parameter distributions.
const defaultSampleEvery = 8

// sourced is implemented by benchmarks that wrap another one (the synthetic
// benchmark); a capture of such a workload records the real source.
type sourced interface {
	Source() (string, float64)
}

// captureSource resolves the benchmark name and scale a capture should
// stamp into its profile.
func (s *Server) captureSource(m *core.Manager) (string, float64) {
	if src, ok := m.Benchmark().(sourced); ok {
		return src.Source()
	}
	s.synthMu.Lock()
	scale := s.scales[strings.ToLower(m.Name())]
	s.synthMu.Unlock()
	if scale <= 0 {
		scale = 1
	}
	return m.Benchmark().Name(), scale
}

// ---- capture resource ----

// captureRequest is the optional POST .../capture payload.
type captureRequest struct {
	// SampleEvery is the parameter-sampling stride: every Nth attempt's
	// statement arguments feed the profile's parameter distributions
	// (default 8; 1 samples every attempt).
	SampleEvery int `json:"sample_every"`
}

// CaptureResponse is the capture status payload.
type CaptureResponse struct {
	Workload string `json:"workload"`
	synth.CaptureStatus
}

func (s *Server) v1GetCapture(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	s.synthMu.Lock()
	c := s.captures[strings.ToLower(m.Name())]
	s.synthMu.Unlock()
	if c == nil {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: workload %q is not capturing", m.Name()))
		return
	}
	writeJSON(w, http.StatusOK, CaptureResponse{Workload: m.Name(), CaptureStatus: c.Status()})
}

func (s *Server) v1StartCapture(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	req := captureRequest{SampleEvery: defaultSampleEvery}
	if r.ContentLength != 0 {
		if !decodeJSON(w, r, &req) {
			return
		}
	}
	if req.SampleEvery < 1 {
		req.SampleEvery = 1
	}
	bench, scale := s.captureSource(m)
	key := strings.ToLower(m.Name())
	s.synthMu.Lock()
	if s.captures[key] != nil {
		s.synthMu.Unlock()
		writeErr(w, http.StatusConflict, "conflict",
			fmt.Errorf("api: workload %q is already capturing", m.Name()))
		return
	}
	c := synth.NewCapture(bench, m.Status().DBMS, scale)
	s.captures[key] = c
	s.synthMu.Unlock()
	m.SetCapture(c, req.SampleEvery)
	w.Header().Set("Location", "/api/v1/workloads/"+key+"/capture")
	writeJSON(w, http.StatusCreated, CaptureResponse{Workload: m.Name(), CaptureStatus: c.Status()})
}

func (s *Server) v1FinishCapture(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	key := strings.ToLower(m.Name())
	s.synthMu.Lock()
	c := s.captures[key]
	delete(s.captures, key)
	s.synthMu.Unlock()
	if c == nil {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: workload %q is not capturing", m.Name()))
		return
	}
	// Detach before finalizing so the totals stop moving.
	m.SetCapture(nil, 0)
	if r.URL.Query().Get("discard") == "true" {
		writeJSON(w, http.StatusOK, map[string]any{"workload": m.Name(), "discarded": true})
		return
	}
	s.synthMu.Lock()
	s.profileSeq++
	id := fmt.Sprintf("p%d", s.profileSeq)
	s.synthMu.Unlock()
	p, err := c.Finish(id)
	if err != nil {
		writeErr(w, http.StatusConflict, "conflict",
			fmt.Errorf("api: capture not usable as a profile: %w", err))
		return
	}
	p.Name = m.Name()
	s.synthMu.Lock()
	s.profiles[id] = p
	s.synthMu.Unlock()
	w.Header().Set("Location", "/api/v1/profiles/"+id)
	writeJSON(w, http.StatusCreated, p)
}

// ---- profile registry ----

// ProfileSummary is one row of the GET /api/v1/profiles listing.
type ProfileSummary struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	Benchmark   string  `json:"benchmark"`
	Scale       float64 `json:"scale"`
	DBMS        string  `json:"dbms,omitempty"`
	Rate        float64 `json:"rate"`
	DurationSec float64 `json:"duration_sec"`
	Attempts    int64   `json:"attempts"`
	Types       int     `json:"types"`
	CreatedUnix int64   `json:"created_unix,omitempty"`
}

// ProfileList is the GET /api/v1/profiles payload.
type ProfileList struct {
	Profiles []ProfileSummary `json:"profiles"`
}

func summaryOf(p *synth.Profile) ProfileSummary {
	return ProfileSummary{
		ID:          p.ID,
		Name:        p.Name,
		Benchmark:   p.Benchmark,
		Scale:       p.Scale,
		DBMS:        p.DBMS,
		Rate:        p.Rate,
		DurationSec: p.DurationSec,
		Attempts:    p.TotalAttempts(),
		Types:       len(p.Types),
		CreatedUnix: p.CreatedUnix,
	}
}

func (s *Server) v1ListProfiles(w http.ResponseWriter, r *http.Request) {
	s.synthMu.Lock()
	out := ProfileList{Profiles: []ProfileSummary{}}
	for _, p := range s.profiles {
		out.Profiles = append(out.Profiles, summaryOf(p))
	}
	s.synthMu.Unlock()
	sort.Slice(out.Profiles, func(i, j int) bool { return out.Profiles[i].ID < out.Profiles[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) v1UploadProfile(w http.ResponseWriter, r *http.Request) {
	var p synth.Profile
	if !decodeJSON(w, r, &p) {
		return
	}
	if err := p.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	if p.CreatedUnix == 0 {
		p.CreatedUnix = time.Now().Unix()
	}
	s.synthMu.Lock()
	s.profileSeq++
	p.ID = fmt.Sprintf("p%d", s.profileSeq)
	s.profiles[p.ID] = &p
	s.synthMu.Unlock()
	w.Header().Set("Location", "/api/v1/profiles/"+p.ID)
	writeJSON(w, http.StatusCreated, &p)
}

// profileByID resolves a stored profile.
func (s *Server) profileByID(id string) (*synth.Profile, error) {
	s.synthMu.Lock()
	defer s.synthMu.Unlock()
	p, ok := s.profiles[id]
	if !ok {
		return nil, fmt.Errorf("api: unknown profile %q", id)
	}
	return p, nil
}

func (s *Server) v1GetProfile(w http.ResponseWriter, r *http.Request) {
	p, err := s.profileByID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) v1DeleteProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.synthMu.Lock()
	_, ok := s.profiles[id]
	delete(s.profiles, id)
	s.synthMu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: unknown profile %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

// ---- arrival resource ----

// ArrivalState is the GET/POST .../arrival payload: the installed arrival
// process plus the instantaneous effective rate it currently yields.
type ArrivalState struct {
	Workload       string  `json:"workload,omitempty"`
	Process        string  `json:"process"`
	BaseRate       float64 `json:"base_rate"`
	Multiplier     float64 `json:"multiplier"`
	Shape          string  `json:"shape"`
	ShapePeriodSec float64 `json:"shape_period_sec,omitempty"`
	ShapeAmplitude float64 `json:"shape_amplitude,omitempty"`
	BurstOnMS      float64 `json:"burst_on_ms,omitempty"`
	BurstOffMS     float64 `json:"burst_off_ms,omitempty"`
	BurstFactor    float64 `json:"burst_factor,omitempty"`
	Skew           float64 `json:"skew"`
	EffectiveRate  float64 `json:"effective_rate"`
}

func arrivalStateOf(workload string, sp core.ArrivalSpec, effective float64) ArrivalState {
	return ArrivalState{
		Workload:       workload,
		Process:        sp.Process,
		BaseRate:       sp.BaseRate,
		Multiplier:     sp.Multiplier,
		Shape:          sp.Shape,
		ShapePeriodSec: sp.ShapePeriod.Seconds(),
		ShapeAmplitude: sp.ShapeAmplitude,
		BurstOnMS:      float64(sp.BurstOn) / float64(time.Millisecond),
		BurstOffMS:     float64(sp.BurstOff) / float64(time.Millisecond),
		BurstFactor:    sp.BurstFactor,
		Skew:           sp.Skew,
		EffectiveRate:  effective,
	}
}

// arrivalRequest is the POST .../arrival payload; zero-valued fields keep
// their defaults (BaseRate inherits the installed spec's base, or the
// closed-loop rate target, so a client can dial the multiplier or skew
// without restating the rate).
type arrivalRequest struct {
	Process        string  `json:"process"`
	BaseRate       float64 `json:"base_rate"`
	Multiplier     float64 `json:"multiplier"`
	Shape          string  `json:"shape"`
	ShapePeriodSec float64 `json:"shape_period_sec"`
	ShapeAmplitude float64 `json:"shape_amplitude"`
	BurstOnMS      float64 `json:"burst_on_ms"`
	BurstOffMS     float64 `json:"burst_off_ms"`
	BurstFactor    float64 `json:"burst_factor"`
	Skew           float64 `json:"skew"`
}

func (s *Server) v1GetArrival(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, arrivalStateOf(m.Name(), m.Arrival(), m.EffectiveRate()))
}

func (s *Server) v1SetArrival(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	var req arrivalRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	spec := core.ArrivalSpec{
		Process:        req.Process,
		BaseRate:       req.BaseRate,
		Multiplier:     req.Multiplier,
		Shape:          req.Shape,
		ShapePeriod:    time.Duration(req.ShapePeriodSec * float64(time.Second)),
		ShapeAmplitude: req.ShapeAmplitude,
		BurstOn:        time.Duration(req.BurstOnMS * float64(time.Millisecond)),
		BurstOff:       time.Duration(req.BurstOffMS * float64(time.Millisecond)),
		BurstFactor:    req.BurstFactor,
		Skew:           req.Skew,
	}
	if spec.BaseRate == 0 {
		// Inherit the current base: the installed spec's, or the closed-loop
		// rate target when none is installed.
		spec.BaseRate = m.Arrival().BaseRate
	}
	if err := m.SetArrival(spec); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	writeJSON(w, http.StatusOK, arrivalStateOf(m.Name(), m.Arrival(), m.EffectiveRate()))
}
