package api

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// apiBench is a two-type benchmark for API tests.
type apiBench struct{}

func (b *apiBench) Name() string { return "apibench" }
func (b *apiBench) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "R", ReadOnly: true, Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error {
			_, err := conn.QueryRow("SELECT v FROM kv WHERE k = ?", rng.Intn(10))
			return err
		}},
		{Name: "W", Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error {
			_, err := conn.Exec("UPDATE kv SET v = v + 1 WHERE k = ?", rng.Intn(10))
			return err
		}},
	}
}
func (b *apiBench) DefaultMix() []float64 { return []float64{50, 50} }
func (b *apiBench) CreateSchema(conn *dbdriver.Conn) error {
	_, err := conn.Exec("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	return err
}
func (b *apiBench) Load(db *dbdriver.DB, rng *rand.Rand) error {
	conn := db.Connect()
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := conn.Exec("INSERT INTO kv (k, v) VALUES (?, 0)", i); err != nil {
			return err
		}
	}
	return nil
}

// startTestServer launches a workload and the API around it.
func startTestServer(t *testing.T) (*httptest.Server, *core.Manager, context.CancelFunc) {
	t.Helper()
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	b := &apiBench{}
	if err := core.Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: time.Hour, Rate: 300}}, core.Options{Terminals: 2, Name: "w1"})
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx)
	srv := NewServer(nil, m)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, m, cancel
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestStatusEndpoint(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	time.Sleep(1200 * time.Millisecond) // let a stats window complete
	var st StatusResponse
	getJSON(t, ts.URL+"/status", &st)
	if st.Name != "w1" || st.Benchmark != "apibench" || st.DBMS != "gomvcc" {
		t.Fatalf("identity: %+v", st)
	}
	if st.TPS <= 0 {
		t.Fatalf("tps = %v", st.TPS)
	}
	if len(st.TypeStats) != 2 {
		t.Fatalf("types = %v", st.TypeStats)
	}
	if st.Rate != 300 {
		t.Fatalf("rate = %v", st.Rate)
	}
}

func TestRateControlEndpoint(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()
	var st StatusResponse
	if code := postJSON(t, ts.URL+"/rate", map[string]any{"tps": 42.0}, &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if m.Rate() != 42 {
		t.Fatalf("manager rate = %v", m.Rate())
	}
	postJSON(t, ts.URL+"/rate", map[string]any{"unlimited": true}, &st)
	if m.Rate() != 0 || !st.Unlimited {
		t.Fatalf("unlimited: rate=%v st=%+v", m.Rate(), st)
	}
}

func TestMixtureEndpoint(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()
	// Explicit weights.
	if code := postJSON(t, ts.URL+"/mixture", map[string]any{"weights": []float64{100, 0}}, nil); code != 200 {
		t.Fatalf("weights: %d", code)
	}
	if mix := m.Mix(); mix[0] != 100 || mix[1] != 0 {
		t.Fatalf("mix = %v", mix)
	}
	// Preset derived from read-only flags.
	if code := postJSON(t, ts.URL+"/mixture", map[string]any{"preset": "readonly"}, nil); code != 200 {
		t.Fatalf("readonly preset: %d", code)
	}
	if mix := m.Mix(); mix[0] == 0 || mix[1] != 0 {
		t.Fatalf("readonly mix = %v", mix)
	}
	if code := postJSON(t, ts.URL+"/mixture", map[string]any{"preset": "writeheavy"}, nil); code != 200 {
		t.Fatalf("writeheavy preset: %d", code)
	}
	if mix := m.Mix(); mix[0] != 0 || mix[1] == 0 {
		t.Fatalf("writeheavy mix = %v", mix)
	}
	// Back to default.
	postJSON(t, ts.URL+"/mixture", map[string]any{"preset": "default"}, nil)
	if mix := m.Mix(); mix[0] != 50 || mix[1] != 50 {
		t.Fatalf("default mix = %v", mix)
	}
	// Bad requests.
	if code := postJSON(t, ts.URL+"/mixture", map[string]any{"preset": "bogus"}, nil); code != 400 {
		t.Fatalf("bogus preset: %d", code)
	}
	if code := postJSON(t, ts.URL+"/mixture", map[string]any{}, nil); code != 400 {
		t.Fatalf("empty mixture: %d", code)
	}
}

func TestPauseResumeEndpoints(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()
	postJSON(t, ts.URL+"/pause", map[string]any{}, nil)
	if !m.Paused() {
		t.Fatal("not paused")
	}
	postJSON(t, ts.URL+"/resume", map[string]any{}, nil)
	if m.Paused() {
		t.Fatal("still paused")
	}
}

func TestWindowsEndpoint(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	time.Sleep(1200 * time.Millisecond)
	var pts []WindowPoint
	getJSON(t, ts.URL+"/windows", &pts)
	if len(pts) == 0 {
		t.Fatal("no window points")
	}
	if pts[0].TPS <= 0 && len(pts) > 1 && pts[1].TPS <= 0 {
		t.Fatalf("windows look empty: %+v", pts)
	}
}

func TestUnknownWorkload(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	resp, err := http.Get(ts.URL + "/status?workload=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestStartBenchmarkEndpoint(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	// Without a StartWorkload hook, POST /benchmark is 501.
	if code := postJSON(t, ts.URL+"/benchmark", map[string]any{"benchmark": "x"}, nil); code != 501 {
		t.Fatalf("status = %d", code)
	}
}

func TestStartWorkloadHook(t *testing.T) {
	db, _ := dbdriver.Open("gomvcc")
	defer db.Close()
	b := &apiBench{}
	core.Prepare(b, db, 1)
	srv := NewServer(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.StartWorkload = func(req StartRequest) (*core.Manager, error) {
		m := core.NewManager(b, db, []core.Phase{{Duration: time.Hour, Rate: req.Rate}},
			core.Options{Name: req.Name})
		go m.Run(ctx)
		return m, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st StatusResponse
	if code := postJSON(t, ts.URL+"/benchmark",
		map[string]any{"name": "tenant2", "benchmark": "apibench", "rate": 10.0}, &st); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if st.Name != "tenant2" {
		t.Fatalf("started workload: %+v", st)
	}
	// It must now be visible in /workloads.
	var all []StatusResponse
	getJSON(t, ts.URL+"/workloads", &all)
	if len(all) != 1 || all[0].Name != "tenant2" {
		t.Fatalf("workloads = %+v", all)
	}
}
