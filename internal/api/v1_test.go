package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/stats"
)

// doReq issues a request with full control over method/body/headers and
// returns the response with its body read.
func doReq(t *testing.T, method, url, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// decodeEnvelope asserts the body is the uniform error envelope and returns
// its code.
func decodeEnvelope(t *testing.T, data []byte) string {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("not an error envelope: %s (%v)", data, err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("incomplete envelope: %s", data)
	}
	return env.Error.Code
}

func TestV1StatusAndList(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	time.Sleep(1200 * time.Millisecond)

	var st StatusResponse
	getJSON(t, ts.URL+"/api/v1/workloads/w1", &st)
	if st.Name != "w1" || st.Benchmark != "apibench" {
		t.Fatalf("identity: %+v", st)
	}
	if st.TPS <= 0 || st.Committed == 0 {
		t.Fatalf("no progress visible: %+v", st)
	}
	// Tentpole: percentiles surface per run and per type, and order sanely.
	if st.P50MS <= 0 || st.P95MS < st.P50MS || st.P99MS < st.P95MS || st.MaxMS < st.P99MS {
		t.Fatalf("percentiles: p50=%v p95=%v p99=%v max=%v", st.P50MS, st.P95MS, st.P99MS, st.MaxMS)
	}
	for _, tst := range st.TypeStats {
		if tst.Count > 50 && (tst.P50MS <= 0 || tst.P99MS < tst.P50MS) {
			t.Fatalf("type %s percentiles: %+v", tst.Name, tst)
		}
	}

	var list WorkloadList
	getJSON(t, ts.URL+"/api/v1/workloads", &list)
	if len(list.Workloads) != 1 || list.Workloads[0].Name != "w1" {
		t.Fatalf("list = %+v", list)
	}
}

func TestV1RateResource(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()

	var rs RateState
	getJSON(t, ts.URL+"/api/v1/workloads/w1/rate", &rs)
	if rs.TPS != 300 || rs.Unlimited {
		t.Fatalf("initial rate state: %+v", rs)
	}

	resp, data := doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/rate",
		"application/json", []byte(`{"tps": 42}`))
	if resp.StatusCode != 200 {
		t.Fatalf("set rate: %d %s", resp.StatusCode, data)
	}
	if m.Rate() != 42 {
		t.Fatalf("manager rate = %v", m.Rate())
	}

	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/rate",
		"application/json", []byte(`{"tps": -5}`))
	if resp.StatusCode != 400 || decodeEnvelope(t, data) != "bad_request" {
		t.Fatalf("negative rate: %d %s", resp.StatusCode, data)
	}
}

func TestV1MixtureResource(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()

	var ms MixtureState
	getJSON(t, ts.URL+"/api/v1/workloads/w1/mixture", &ms)
	if len(ms.Types) != 2 || ms.Types[0] != "R" || ms.Weights[0] != 50 {
		t.Fatalf("initial mixture: %+v", ms)
	}

	resp, data := doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/mixture",
		"application/json", []byte(`{"weights": [100, 0]}`))
	if resp.StatusCode != 200 {
		t.Fatalf("set mixture: %d %s", resp.StatusCode, data)
	}
	if mix := m.Mix(); mix[0] != 100 || mix[1] != 0 {
		t.Fatalf("mix = %v", mix)
	}

	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/mixture",
		"application/json", []byte(`{"preset": "bogus"}`))
	if resp.StatusCode != 400 || decodeEnvelope(t, data) != "bad_request" {
		t.Fatalf("bogus preset: %d %s", resp.StatusCode, data)
	}
}

func TestV1PauseResume(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()
	resp, _ := doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/pause", "", nil)
	if resp.StatusCode != 200 || !m.Paused() {
		t.Fatalf("pause: %d paused=%v", resp.StatusCode, m.Paused())
	}
	resp, _ = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/resume", "", nil)
	if resp.StatusCode != 200 || m.Paused() {
		t.Fatalf("resume: %d paused=%v", resp.StatusCode, m.Paused())
	}
}

func TestV1DeleteWorkload(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()

	resp, data := doReq(t, "DELETE", ts.URL+"/api/v1/workloads/w1", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("delete: %d %s", resp.StatusCode, data)
	}
	var dr DeleteResponse
	if err := json.Unmarshal(data, &dr); err != nil || !dr.Deleted || dr.Name != "w1" {
		t.Fatalf("delete response: %s", data)
	}
	// The run stops...
	select {
	case <-m.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("workload did not stop after DELETE")
	}
	// ...and the resource is gone.
	resp, data = doReq(t, "GET", ts.URL+"/api/v1/workloads/w1", "", nil)
	if resp.StatusCode != 404 || decodeEnvelope(t, data) != "not_found" {
		t.Fatalf("after delete: %d %s", resp.StatusCode, data)
	}
	resp, _ = doReq(t, "DELETE", ts.URL+"/api/v1/workloads/w1", "", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
}

func TestErrorEnvelope(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()

	// Unknown resource path: JSON 404, not the mux's text/plain.
	resp, data := doReq(t, "GET", ts.URL+"/api/v1/nope", "", nil)
	if resp.StatusCode != 404 || decodeEnvelope(t, data) != "not_found" {
		t.Fatalf("unknown path: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 content type: %s", ct)
	}

	// Unknown workload.
	resp, data = doReq(t, "GET", ts.URL+"/api/v1/workloads/ghost", "", nil)
	if resp.StatusCode != 404 || decodeEnvelope(t, data) != "not_found" {
		t.Fatalf("unknown workload: %d %s", resp.StatusCode, data)
	}

	// Wrong method: JSON 405 with Allow.
	resp, data = doReq(t, "PUT", ts.URL+"/api/v1/workloads/w1/rate", "", nil)
	if resp.StatusCode != 405 || decodeEnvelope(t, data) != "method_not_allowed" {
		t.Fatalf("wrong method: %d %s", resp.StatusCode, data)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("Allow header: %q", allow)
	}

	// Wrong content type on POST: 415.
	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/rate",
		"text/plain", []byte(`{"tps": 10}`))
	if resp.StatusCode != 415 || decodeEnvelope(t, data) != "unsupported_media_type" {
		t.Fatalf("wrong content type: %d %s", resp.StatusCode, data)
	}

	// Oversized body: 413.
	big := append([]byte(`{"tps": 1, "pad": "`), bytes.Repeat([]byte("x"), maxBodyBytes+1024)...)
	big = append(big, []byte(`"}`)...)
	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/rate", "application/json", big)
	if resp.StatusCode != 413 || decodeEnvelope(t, data) != "request_too_large" {
		t.Fatalf("oversized body: %d %s", resp.StatusCode, data)
	}

	// Malformed JSON: 400.
	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads/w1/rate",
		"application/json", []byte(`{"tps":`))
	if resp.StatusCode != 400 || decodeEnvelope(t, data) != "bad_request" {
		t.Fatalf("malformed JSON: %d %s", resp.StatusCode, data)
	}

	// Create without a hook: 501.
	resp, data = doReq(t, "POST", ts.URL+"/api/v1/workloads",
		"application/json", []byte(`{"benchmark": "x"}`))
	if resp.StatusCode != 501 || decodeEnvelope(t, data) != "not_implemented" {
		t.Fatalf("create without hook: %d %s", resp.StatusCode, data)
	}
}

func TestLegacyAliasesDeprecated(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	resp, _ := doReq(t, "GET", ts.URL+"/status", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("legacy status: %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/workloads") {
		t.Fatalf("legacy Link header: %q", link)
	}
	// Wrong method on a legacy path is still a JSON 405.
	resp, data := doReq(t, "DELETE", ts.URL+"/rate", "", nil)
	if resp.StatusCode != 405 || decodeEnvelope(t, data) != "method_not_allowed" {
		t.Fatalf("legacy wrong method: %d %s", resp.StatusCode, data)
	}
}

// sseFrame is one parsed SSE event.
type sseFrame struct {
	event string
	id    string
	data  string
}

// readFrames consumes SSE events from r until n "window" events arrived or
// the deadline passes.
func readFrames(t *testing.T, r io.Reader, n int, deadline time.Duration) []sseFrame {
	t.Helper()
	var out []sseFrame
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(r)
		cur := sseFrame{}
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.event != "" || cur.data != "" {
					out = append(out, cur)
				}
				cur = sseFrame{}
				wins := 0
				for _, f := range out {
					if f.event == "window" {
						wins++
					}
				}
				if wins >= n {
					return
				}
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				cur.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("SSE: got %d frames before deadline, wanted %d window events", len(out), n)
	}
	return out
}

func TestStreamEndpoint(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()

	resp, err := http.Get(ts.URL + "/api/v1/workloads/w1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type: %s", ct)
	}
	start := time.Now()
	frames := readFrames(t, resp.Body, 3, 10*time.Second)
	elapsed := time.Since(start)

	var wins []StreamFrame
	for _, f := range frames {
		if f.event != "window" {
			continue
		}
		var sf StreamFrame
		if err := json.Unmarshal([]byte(f.data), &sf); err != nil {
			t.Fatalf("frame %q: %v", f.data, err)
		}
		if sf.Workload != "w1" {
			t.Fatalf("frame workload: %+v", sf)
		}
		if id, _ := strconv.Atoi(f.id); id != sf.Second {
			t.Fatalf("SSE id %s != window %d", f.id, sf.Second)
		}
		wins = append(wins, sf)
	}
	if len(wins) < 3 {
		t.Fatalf("only %d window frames", len(wins))
	}
	// Windows arrive in order, roughly one per second (the window length).
	for i := 1; i < len(wins); i++ {
		if wins[i].Second != wins[i-1].Second+1 {
			t.Fatalf("out of order: %d then %d", wins[i-1].Second, wins[i].Second)
		}
	}
	if elapsed > time.Duration(len(wins)+3)*time.Second {
		t.Fatalf("3 frames took %v", elapsed)
	}
	// At 300 tps most windows carry data with percentile digests.
	var withData *StreamFrame
	for i := range wins {
		if wins[i].Committed > 0 {
			withData = &wins[i]
			break
		}
	}
	if withData == nil {
		t.Fatal("no window with committed transactions")
	}
	if withData.P95MS < withData.P50MS || len(withData.Types) == 0 {
		t.Fatalf("window digest: %+v", withData)
	}
}

func TestStreamWhilePaused(t *testing.T) {
	ts, m, cancel := startTestServer(t)
	defer cancel()
	m.Pause()
	resp, err := http.Get(ts.URL + "/api/v1/workloads/w1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Even with arrivals paused the stream keeps emitting: rotation is
	// pull-forced, so paused seconds surface as empty windows.
	frames := readFrames(t, resp.Body, 2, 10*time.Second)
	n := 0
	for _, f := range frames {
		if f.event == "window" {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("paused stream produced %d frames", n)
	}
}

func TestStreamDisconnectNoLeak(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	stream := func() {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/workloads/w1/stream?from=%d", ts.URL, 0))
		if err != nil {
			t.Fatal(err)
		}
		readFrames(t, resp.Body, 1, 10*time.Second)
		resp.Body.Close() // abrupt client disconnect mid-stream
	}
	// Warm-up cycle so transport/server connection plumbing is counted in
	// the baseline, then measure across repeated disconnects.
	stream()
	http.DefaultClient.CloseIdleConnections()
	time.Sleep(200 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		stream()
	}
	// The handlers unwind via the request context; allow the server a
	// moment to reap connections.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after disconnects", before, runtime.NumGoroutine())
}

func TestStreamBadFrom(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	resp, data := doReq(t, "GET", ts.URL+"/api/v1/workloads/w1/stream?from=x", "", nil)
	if resp.StatusCode != 400 || decodeEnvelope(t, data) != "bad_request" {
		t.Fatalf("bad from: %d %s", resp.StatusCode, data)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, cancel := startTestServer(t)
	defer cancel()
	time.Sleep(1200 * time.Millisecond)

	resp, data := doReq(t, "GET", ts.URL+"/metrics", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type: %s", ct)
	}
	series := parseProm(t, data)

	committed := series[`benchpress_txn_committed_total{workload="w1"}`]
	if committed <= 0 {
		t.Fatalf("committed counter missing or zero:\n%s", data)
	}
	// Per-type counters sum to the global counter.
	r := series[`benchpress_txn_type_committed_total{workload="w1",type="R"}`]
	wc := series[`benchpress_txn_type_committed_total{workload="w1",type="W"}`]
	if r+wc == 0 {
		t.Fatal("per-type counters missing")
	}
	// Rate limiter state.
	if series[`benchpress_rate_target_tps{workload="w1"}`] != 300 {
		t.Fatal("rate gauge wrong")
	}
	if _, ok := series[`benchpress_queue_capacity{workload="w1"}`]; !ok {
		t.Fatal("queue capacity gauge missing")
	}
	// Histogram: +Inf bucket equals _count, buckets monotonic.
	count := series[`benchpress_txn_latency_seconds_count{workload="w1"}`]
	inf := series[`benchpress_txn_latency_seconds_bucket{workload="w1",le="+Inf"}`]
	if count == 0 || count != inf {
		t.Fatalf("histogram count %v != +Inf bucket %v", count, inf)
	}
	prev := float64(0)
	nbuckets := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, `benchpress_txn_latency_seconds_bucket{workload="w1",le=`) &&
			!strings.Contains(line, "type=") {
			parts := strings.Fields(line)
			v, err := strconv.ParseFloat(parts[len(parts)-1], 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("non-monotonic bucket: %q", line)
			}
			prev = v
			nbuckets++
		}
	}
	if nbuckets != len(stats.DefaultLEBoundsUS)+1 {
		t.Fatalf("bucket count = %d", nbuckets)
	}
}

// parseProm extracts "name{labels} value" series from exposition text.
func parseProm(t *testing.T, data []byte) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("bad metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad metrics value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	return out
}

func TestV1CreateWorkload(t *testing.T) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b := &apiBench{}
	if err := core.Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv.StartWorkload = func(req StartRequest) (*core.Manager, error) {
		m := core.NewManager(b, db, []core.Phase{{Duration: time.Hour, Rate: req.Rate}},
			core.Options{Name: req.Name})
		go m.Run(ctx)
		return m, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := doReq(t, "POST", ts.URL+"/api/v1/workloads",
		"application/json", []byte(`{"name": "tenant2", "benchmark": "apibench", "rate": 10}`))
	if resp.StatusCode != 201 {
		t.Fatalf("create: %d %s", resp.StatusCode, data)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/workloads/tenant2" {
		t.Fatalf("Location: %q", loc)
	}
	var st StatusResponse
	if err := json.Unmarshal(data, &st); err != nil || st.Name != "tenant2" {
		t.Fatalf("create body: %s", data)
	}
	var list WorkloadList
	getJSON(t, ts.URL+"/api/v1/workloads", &list)
	if len(list.Workloads) != 1 || list.Workloads[0].Name != "tenant2" {
		t.Fatalf("list after create: %+v", list)
	}
}
