// Package api implements the RESTful control API the paper's Section 2.2.4
// describes: programmatic runtime control of a running OLTP-Bench execution
// (throttle the throughput, change the workload mixture, pause/resume, and
// start additional benchmarks on the fly) plus instantaneous feedback about
// the current throughput and latency percentiles per transaction type.
// BenchPress drives the game through exactly this interface.
//
// The API is versioned under /api/v1 with workloads as resources:
//
//	GET    /api/v1/workloads                  list workloads
//	POST   /api/v1/workloads                  start a new workload (201)
//	GET    /api/v1/workloads/{name}           status with latency percentiles
//	DELETE /api/v1/workloads/{name}           stop and deregister
//	GET    /api/v1/workloads/{name}/windows   per-window trajectory
//	GET    /api/v1/workloads/{name}/stream    live SSE window frames
//	GET/POST /api/v1/workloads/{name}/rate    read / set the rate limiter
//	GET/POST /api/v1/workloads/{name}/mixture read / set the mixture
//	POST   /api/v1/workloads/{name}/pause     pause arrivals
//	POST   /api/v1/workloads/{name}/resume    resume arrivals
//	GET    /metrics                           Prometheus text exposition
//
// In coordinator mode the server additionally exposes the cluster resource
// (worker registration, merged status/stream, aggregate rate/mixture fan-out)
// under /api/v1/cluster — see cluster.go for the endpoint table.
//
// The original flat routes (/status, /rate, ...) remain as deprecated thin
// aliases; they answer with a Deprecation header pointing at the v1 resource.
// All errors share one envelope: {"error":{"code":"...","message":"..."}}.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"benchpress/internal/cluster"
	"benchpress/internal/core"
	"benchpress/internal/monitor"
	"benchpress/internal/stats"
	"benchpress/internal/synth"
)

// maxBodyBytes bounds every request body the API decodes.
const maxBodyBytes = 1 << 20

// Server exposes a set of running workloads over HTTP.
type Server struct {
	mu        sync.RWMutex
	workloads map[string]*core.Manager
	monitor   *monitor.Monitor
	// cluster/clusterWire are set in coordinator mode (see EnableCluster):
	// the coordinator merging worker stats and the control-wire address
	// advertised to registering workers.
	cluster     *cluster.Coordinator
	clusterWire string
	// StartWorkload, when set, handles POST /api/v1/workloads: it prepares
	// and launches an additional workload and returns its manager.
	StartWorkload func(req StartRequest) (*core.Manager, error)

	// Workload-synthesis state: running captures by workload key, stored
	// profiles by id, and the scale factors recorded for capture metadata
	// (the manager itself does not retain the scale it was prepared at).
	synthMu    sync.Mutex
	captures   map[string]*synth.Capture
	profiles   map[string]*synth.Profile
	profileSeq int
	scales     map[string]float64
}

// NewServer wraps the given workloads (more may be added at runtime).
func NewServer(mon *monitor.Monitor, managers ...*core.Manager) *Server {
	s := &Server{
		workloads: map[string]*core.Manager{},
		monitor:   mon,
		captures:  map[string]*synth.Capture{},
		profiles:  map[string]*synth.Profile{},
		scales:    map[string]float64{},
	}
	for _, m := range managers {
		s.Add(m)
	}
	return s
}

// RecordScale notes a workload's scale factor so a later capture can stamp
// it into the profile.
func (s *Server) RecordScale(name string, scale float64) {
	if scale <= 0 {
		return
	}
	s.synthMu.Lock()
	defer s.synthMu.Unlock()
	s.scales[strings.ToLower(name)] = scale
}

// Add registers a running workload with the API.
func (s *Server) Add(m *core.Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloads[strings.ToLower(m.Name())] = m
}

// Remove deregisters a workload by name, reporting whether it was present.
func (s *Server) Remove(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	_, ok := s.workloads[key]
	delete(s.workloads, key)
	return ok
}

// Managers lists registered workloads sorted by name.
func (s *Server) Managers() []*core.Manager {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.workloads))
	for n := range s.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*core.Manager, len(names))
	for i, n := range names {
		out[i] = s.workloads[n]
	}
	return out
}

// lookup resolves a workload by name; an empty name resolves when exactly
// one workload is registered.
func (s *Server) lookup(name string) (*core.Manager, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.workloads) == 1 {
			for _, m := range s.workloads {
				return m, nil
			}
		}
		return nil, fmt.Errorf("api: workload name required (registered: %d)", len(s.workloads))
	}
	m, ok := s.workloads[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("api: unknown workload %q", name)
	}
	return m, nil
}

// StatusResponse is the workload status payload.
type StatusResponse struct {
	Name       string             `json:"name"`
	Benchmark  string             `json:"benchmark"`
	DBMS       string             `json:"dbms"`
	Phase      int                `json:"phase"`
	Rate       float64            `json:"rate"`
	Unlimited  bool               `json:"unlimited"`
	Paused     bool               `json:"paused"`
	Stopped    bool               `json:"stopped"`
	Mix        []float64          `json:"mix"`
	TPS        float64            `json:"tps"`
	AvgLatMS   float64            `json:"avg_latency_ms"`
	P50MS      float64            `json:"p50_ms"`
	P95MS      float64            `json:"p95_ms"`
	P99MS      float64            `json:"p99_ms"`
	MaxMS      float64            `json:"max_ms"`
	AbortsPS   float64            `json:"aborts_per_sec"`
	Committed  int64              `json:"committed"`
	Aborted    int64              `json:"aborted"`
	Errors     int64              `json:"errors"`
	Retries    int64              `json:"retries"`
	Postponed  int64              `json:"postponed"`
	TypeStats  []TypeStat         `json:"types"`
	ElapsedSec float64            `json:"elapsed_sec"`
	Resources  *ResourcesResponse `json:"resources,omitempty"`
	// Arrival is the installed arrival process (Process "closed" when the
	// legacy rate limiter governs); Capturing reports an attached capture.
	Arrival   *ArrivalState `json:"arrival,omitempty"`
	Capturing bool          `json:"capturing"`
}

// TypeStat is per-transaction-type feedback, cumulative over the run.
type TypeStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	AvgLatMS float64 `json:"avg_latency_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// ResourcesResponse mirrors the monitoring tool's latest sample.
type ResourcesResponse struct {
	CPUUserPct   float64 `json:"cpu_user_pct"`
	CPUSystemPct float64 `json:"cpu_system_pct"`
	MemUsedPct   float64 `json:"mem_used_pct"`
	HeapMB       float64 `json:"heap_mb"`
	Goroutines   int     `json:"goroutines"`
	HostStats    bool    `json:"host_stats"`
}

// StartRequest is the POST /api/v1/workloads payload. For
// benchmark "synthetic", Profile names a stored workload profile and the
// synthesis dials (Amplify, Process, Skew) shape the replay's open-loop
// arrival spec.
type StartRequest struct {
	Name        string    `json:"name"` // workload label (defaults to benchmark)
	Benchmark   string    `json:"benchmark"`
	DBMS        string    `json:"dbms"`
	Scale       float64   `json:"scale"`
	Terminals   int       `json:"terminals"`
	DurationSec float64   `json:"duration_sec"`
	Rate        float64   `json:"rate"`
	Mix         []float64 `json:"mix"`
	// Profile is the stored profile id to synthesize from (benchmark
	// "synthetic" only); Amplify is the x-N-users dial (default 1), Process
	// overrides the arrival process kind, Skew sets the hot-key dial.
	Profile string  `json:"profile,omitempty"`
	Amplify float64 `json:"amplify,omitempty"`
	Process string  `json:"process,omitempty"`
	Skew    float64 `json:"skew,omitempty"`
	// ResolvedProfile is filled by the server before StartWorkload runs: the
	// stored profile the id referred to.
	ResolvedProfile *synth.Profile `json:"-"`
}

// snapshotToResponse builds the status payload for one manager.
func (s *Server) snapshotToResponse(m *core.Manager) StatusResponse {
	st := m.Status()
	resp := StatusResponse{
		Name:       st.Name,
		Benchmark:  st.Benchmark,
		DBMS:       st.DBMS,
		Phase:      st.Phase,
		Rate:       st.Rate,
		Unlimited:  st.Unlimited,
		Paused:     st.Paused,
		Stopped:    st.Stopped,
		Mix:        st.Mix,
		TPS:        st.Snapshot.TPS,
		AvgLatMS:   msOf(st.Snapshot.AvgLatency),
		P50MS:      msOf(st.Snapshot.Latency.P50),
		P95MS:      msOf(st.Snapshot.Latency.P95),
		P99MS:      msOf(st.Snapshot.Latency.P99),
		MaxMS:      msOf(st.Snapshot.Latency.Max),
		AbortsPS:   st.Snapshot.AbortsPerSec,
		Committed:  st.Snapshot.Committed,
		Aborted:    st.Snapshot.Aborted,
		Errors:     st.Snapshot.Errors,
		Retries:    st.Snapshot.Retries,
		Postponed:  st.Postponed,
		ElapsedSec: st.Snapshot.Elapsed.Seconds(),
		Capturing:  st.Capturing,
	}
	ar := arrivalStateOf("", st.Arrival, st.EffectiveRate)
	resp.Arrival = &ar
	for i, name := range st.Snapshot.TypeNames {
		tl := st.Snapshot.TypeLat[i]
		resp.TypeStats = append(resp.TypeStats, TypeStat{
			Name:     name,
			Count:    st.Snapshot.TypeCounts[i],
			AvgLatMS: msOf(st.Snapshot.TypeLatency[i]),
			P50MS:    msOf(tl.P50),
			P95MS:    msOf(tl.P95),
			P99MS:    msOf(tl.P99),
			MaxMS:    msOf(tl.Max),
		})
	}
	if s.monitor != nil {
		r := s.monitor.Latest()
		resp.Resources = &ResourcesResponse{
			CPUUserPct:   r.CPUUserPct,
			CPUSystemPct: r.CPUSystemPct,
			MemUsedPct:   r.MemUsedPct,
			HeapMB:       r.HeapMB,
			Goroutines:   r.Goroutines,
			HostStats:    r.HostStats,
		}
	}
	return resp
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// allowOnly answers any unmatched method on a known path with a JSON 405.
func allowOnly(methods string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", methods)
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Errorf("api: method %s not allowed (allow: %s)", r.Method, methods))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorEnvelope is the uniform error shape of every non-2xx response.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}})
}

// decodeJSON enforces the POST body contract: application/json content type,
// a size cap, and strict-enough decoding. It writes the error response
// itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			writeErr(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
				fmt.Errorf("api: content type %q not supported; use application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request_too_large",
				fmt.Errorf("api: request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("api: invalid JSON body: %w", err))
		return false
	}
	return true
}

// pathWorkload resolves the {name} path value, writing the 404 itself.
func (s *Server) pathWorkload(w http.ResponseWriter, r *http.Request) (*core.Manager, bool) {
	m, err := s.lookup(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return nil, false
	}
	return m, true
}

// ---- v1 resource handlers ----

// WorkloadList is the GET /api/v1/workloads payload.
type WorkloadList struct {
	Workloads []StatusResponse `json:"workloads"`
}

func (s *Server) v1ListWorkloads(w http.ResponseWriter, r *http.Request) {
	out := WorkloadList{Workloads: []StatusResponse{}}
	for _, m := range s.Managers() {
		out.Workloads = append(out.Workloads, s.snapshotToResponse(m))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) v1CreateWorkload(w http.ResponseWriter, r *http.Request) {
	if s.StartWorkload == nil {
		writeErr(w, http.StatusNotImplemented, "not_implemented",
			fmt.Errorf("api: dynamic workload start not enabled"))
		return
	}
	var req StartRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Profile != "" {
		p, err := s.profileByID(req.Profile)
		if err != nil {
			writeErr(w, http.StatusNotFound, "not_found", err)
			return
		}
		req.ResolvedProfile = p
	}
	m, err := s.StartWorkload(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	s.Add(m)
	s.RecordScale(m.Name(), req.Scale)
	w.Header().Set("Location", "/api/v1/workloads/"+strings.ToLower(m.Name()))
	writeJSON(w, http.StatusCreated, s.snapshotToResponse(m))
}

func (s *Server) v1Status(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

// DeleteResponse is the DELETE /api/v1/workloads/{name} payload.
type DeleteResponse struct {
	Name    string `json:"name"`
	Deleted bool   `json:"deleted"`
}

func (s *Server) v1DeleteWorkload(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	m.Stop()
	s.Remove(m.Name())
	// Drop any synthesis state tied to the workload; an unfinished capture
	// dies with it (its profile was never materialized).
	key := strings.ToLower(m.Name())
	s.synthMu.Lock()
	delete(s.captures, key)
	delete(s.scales, key)
	s.synthMu.Unlock()
	writeJSON(w, http.StatusOK, DeleteResponse{Name: m.Name(), Deleted: true})
}

func (s *Server) v1Windows(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, windowPoints(m))
}

// RateState is the GET/POST .../rate payload.
type RateState struct {
	Workload  string  `json:"workload"`
	TPS       float64 `json:"tps"`
	Unlimited bool    `json:"unlimited"`
	Paused    bool    `json:"paused"`
}

func rateState(m *core.Manager) RateState {
	rate := m.Rate()
	return RateState{Workload: m.Name(), TPS: rate, Unlimited: rate <= 0, Paused: m.Paused()}
}

func (s *Server) v1GetRate(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, rateState(m))
}

func (s *Server) v1SetRate(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	var req rateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.TPS < 0 {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("api: rate must be non-negative, got %v", req.TPS))
		return
	}
	if req.Unlimited {
		m.SetRate(0)
	} else {
		m.SetRate(req.TPS)
	}
	writeJSON(w, http.StatusOK, rateState(m))
}

// MixtureState is the GET/POST .../mixture payload.
type MixtureState struct {
	Workload string    `json:"workload"`
	Types    []string  `json:"types"`
	Weights  []float64 `json:"weights"`
}

func mixtureState(m *core.Manager) MixtureState {
	return MixtureState{Workload: m.Name(), Types: m.Collector().Types(), Weights: m.Mix()}
}

func (s *Server) v1GetMixture(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, mixtureState(m))
}

func (s *Server) v1SetMixture(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	var req mixtureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !s.applyMixture(w, m, req) {
		return
	}
	writeJSON(w, http.StatusOK, mixtureState(m))
}

func (s *Server) v1Pause(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	m.Pause()
	writeJSON(w, http.StatusOK, rateState(m))
}

func (s *Server) v1Resume(w http.ResponseWriter, r *http.Request) {
	m, ok := s.pathWorkload(w, r)
	if !ok {
		return
	}
	m.Resume()
	writeJSON(w, http.StatusOK, rateState(m))
}

// ---- shared route logic ----

// WindowPoint is one per-window observation for plotting and streaming.
type WindowPoint struct {
	Second    int     `json:"second"`
	TPS       float64 `json:"tps"`
	AvgLatMS  float64 `json:"avg_latency_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	Aborted   int64   `json:"aborted"`
	Committed int64   `json:"committed"`
}

func pointOf(win stats.Window, dur time.Duration) WindowPoint {
	return WindowPoint{
		Second:    win.Index,
		TPS:       win.TPS(dur),
		AvgLatMS:  msOf(win.AvgLatency()),
		P50MS:     msOf(win.Lat.P50),
		P95MS:     msOf(win.Lat.P95),
		P99MS:     msOf(win.Lat.P99),
		MaxMS:     msOf(win.Lat.Max),
		Aborted:   win.Aborted,
		Committed: win.Committed,
	}
}

func windowPoints(m *core.Manager) []WindowPoint {
	windows := m.Collector().Windows()
	dur := m.Collector().WindowDuration()
	out := make([]WindowPoint, 0, len(windows))
	for _, win := range windows {
		out = append(out, pointOf(win, dur))
	}
	return out
}

// rateRequest is the set-rate payload.
type rateRequest struct {
	Workload  string  `json:"workload"` // legacy flat route only
	TPS       float64 `json:"tps"`
	Unlimited bool    `json:"unlimited"`
}

// mixtureRequest is the set-mixture payload: explicit weights or a named
// preset ("default", "readonly", "writeheavy").
type mixtureRequest struct {
	Workload string    `json:"workload"` // legacy flat route only
	Weights  []float64 `json:"weights"`
	Preset   string    `json:"preset"`
}

// PresetMixer is implemented by benchmarks that provide the game's preset
// mixtures.
type PresetMixer interface {
	ReadOnlyMix() []float64
	WriteHeavyMix() []float64
}

// applyMixture validates and applies a mixture request, writing the error
// response itself on failure.
func (s *Server) applyMixture(w http.ResponseWriter, m *core.Manager, req mixtureRequest) bool {
	switch strings.ToLower(req.Preset) {
	case "", "custom":
		if req.Weights == nil {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("api: weights required without a preset"))
			return false
		}
		m.SetMix(req.Weights)
	case "default":
		m.SetMix(nil)
	case "readonly", "read-only":
		mix, err := presetOf(m, true)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return false
		}
		m.SetMix(mix)
	case "writeheavy", "super-writes", "write-heavy":
		mix, err := presetOf(m, false)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err)
			return false
		}
		m.SetMix(mix)
	default:
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("api: unknown preset %q", req.Preset))
		return false
	}
	return true
}

// presetOf resolves a benchmark's preset mixture, deriving one from the
// procedure read-only flags when the benchmark does not provide its own.
func presetOf(m *core.Manager, readonly bool) ([]float64, error) {
	if pm, ok := m.Benchmark().(PresetMixer); ok {
		if readonly {
			return pm.ReadOnlyMix(), nil
		}
		return pm.WriteHeavyMix(), nil
	}
	procs := m.Benchmark().Procedures()
	defaults := m.Benchmark().DefaultMix()
	mix := make([]float64, len(procs))
	any := false
	for i, p := range procs {
		if p.ReadOnly == readonly {
			mix[i] = defaults[i]
			if defaults[i] > 0 {
				any = true
			}
		}
	}
	if !any {
		return nil, fmt.Errorf("api: %s has no %s transactions with default weight",
			m.Benchmark().Name(), presetName(readonly))
	}
	return mix, nil
}

func presetName(readonly bool) string {
	if readonly {
		return "read-only"
	}
	return "write-heavy"
}

// ---- deprecated flat aliases ----

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	m, err := s.lookup(r.URL.Query().Get("workload"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	out := []StatusResponse{}
	for _, m := range s.Managers() {
		out = append(out, s.snapshotToResponse(m))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	m, err := s.lookup(r.URL.Query().Get("workload"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, windowPoints(m))
}

func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	var req rateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	if req.Unlimited {
		m.SetRate(0)
	} else {
		m.SetRate(req.TPS)
	}
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

func (s *Server) handleMixture(w http.ResponseWriter, r *http.Request) {
	var req mixtureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	if !s.applyMixture(w, m, req) {
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

type workloadRequest struct {
	Workload string `json:"workload"`
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	var req workloadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	m.Pause()
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	var req workloadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	m.Resume()
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}

func (s *Server) handleStartBenchmark(w http.ResponseWriter, r *http.Request) {
	if s.StartWorkload == nil {
		writeErr(w, http.StatusNotImplemented, "not_implemented",
			fmt.Errorf("api: dynamic workload start not enabled"))
		return
	}
	var req StartRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.StartWorkload(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	s.Add(m)
	writeJSON(w, http.StatusOK, s.snapshotToResponse(m))
}
