// Package api implements the RESTful control API the paper's Section 2.2.4
// describes: programmatic runtime control of a running OLTP-Bench execution
// (throttle the throughput, change the workload mixture, pause/resume, and
// start additional benchmarks on the fly) plus instantaneous feedback about
// the current throughput and average latency per transaction type. BenchPress
// drives the game through exactly this interface.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/monitor"
)

// Server exposes a set of running workloads over HTTP.
type Server struct {
	mu        sync.RWMutex
	workloads map[string]*core.Manager
	monitor   *monitor.Monitor
	// StartWorkload, when set, handles POST /benchmark: it prepares and
	// launches an additional workload and returns its manager.
	StartWorkload func(req StartRequest) (*core.Manager, error)
}

// NewServer wraps the given workloads (more may be added at runtime).
func NewServer(mon *monitor.Monitor, managers ...*core.Manager) *Server {
	s := &Server{workloads: map[string]*core.Manager{}, monitor: mon}
	for _, m := range managers {
		s.Add(m)
	}
	return s
}

// Add registers a running workload with the API.
func (s *Server) Add(m *core.Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloads[strings.ToLower(m.Name())] = m
}

// Managers lists registered workloads sorted by name.
func (s *Server) Managers() []*core.Manager {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.workloads))
	for n := range s.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*core.Manager, len(names))
	for i, n := range names {
		out[i] = s.workloads[n]
	}
	return out
}

// lookup resolves a workload by name; an empty name resolves when exactly
// one workload is registered.
func (s *Server) lookup(name string) (*core.Manager, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.workloads) == 1 {
			for _, m := range s.workloads {
				return m, nil
			}
		}
		return nil, fmt.Errorf("api: workload name required (registered: %d)", len(s.workloads))
	}
	m, ok := s.workloads[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("api: unknown workload %q", name)
	}
	return m, nil
}

// StatusResponse is the GET /status payload.
type StatusResponse struct {
	Name       string             `json:"name"`
	Benchmark  string             `json:"benchmark"`
	DBMS       string             `json:"dbms"`
	Phase      int                `json:"phase"`
	Rate       float64            `json:"rate"`
	Unlimited  bool               `json:"unlimited"`
	Paused     bool               `json:"paused"`
	Mix        []float64          `json:"mix"`
	TPS        float64            `json:"tps"`
	AvgLatMS   float64            `json:"avg_latency_ms"`
	AbortsPS   float64            `json:"aborts_per_sec"`
	Committed  int64              `json:"committed"`
	Aborted    int64              `json:"aborted"`
	Errors     int64              `json:"errors"`
	Retries    int64              `json:"retries"`
	Postponed  int64              `json:"postponed"`
	TypeStats  []TypeStat         `json:"types"`
	ElapsedSec float64            `json:"elapsed_sec"`
	Resources  *ResourcesResponse `json:"resources,omitempty"`
}

// TypeStat is per-transaction-type feedback.
type TypeStat struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	AvgLatMS float64 `json:"avg_latency_ms"`
}

// ResourcesResponse mirrors the monitoring tool's latest sample.
type ResourcesResponse struct {
	CPUUserPct   float64 `json:"cpu_user_pct"`
	CPUSystemPct float64 `json:"cpu_system_pct"`
	MemUsedPct   float64 `json:"mem_used_pct"`
	HeapMB       float64 `json:"heap_mb"`
	Goroutines   int     `json:"goroutines"`
	HostStats    bool    `json:"host_stats"`
}

// StartRequest is the POST /benchmark payload.
type StartRequest struct {
	Name        string    `json:"name"` // workload label (defaults to benchmark)
	Benchmark   string    `json:"benchmark"`
	DBMS        string    `json:"dbms"`
	Scale       float64   `json:"scale"`
	Terminals   int       `json:"terminals"`
	DurationSec float64   `json:"duration_sec"`
	Rate        float64   `json:"rate"`
	Mix         []float64 `json:"mix"`
}

// snapshotToResponse builds the status payload for one manager.
func (s *Server) snapshotToResponse(m *core.Manager) StatusResponse {
	st := m.Status()
	resp := StatusResponse{
		Name:       st.Name,
		Benchmark:  st.Benchmark,
		DBMS:       st.DBMS,
		Phase:      st.Phase,
		Rate:       st.Rate,
		Unlimited:  st.Unlimited,
		Paused:     st.Paused,
		Mix:        st.Mix,
		TPS:        st.Snapshot.TPS,
		AvgLatMS:   msOf(st.Snapshot.AvgLatency),
		AbortsPS:   st.Snapshot.AbortsPerSec,
		Committed:  st.Snapshot.Committed,
		Aborted:    st.Snapshot.Aborted,
		Errors:     st.Snapshot.Errors,
		Retries:    st.Snapshot.Retries,
		Postponed:  st.Postponed,
		ElapsedSec: st.Snapshot.Elapsed.Seconds(),
	}
	for i, name := range st.Snapshot.TypeNames {
		resp.TypeStats = append(resp.TypeStats, TypeStat{
			Name:     name,
			Count:    st.Snapshot.TypeCounts[i],
			AvgLatMS: msOf(st.Snapshot.TypeLatency[i]),
		})
	}
	if s.monitor != nil {
		r := s.monitor.Latest()
		resp.Resources = &ResourcesResponse{
			CPUUserPct:   r.CPUUserPct,
			CPUSystemPct: r.CPUSystemPct,
			MemUsedPct:   r.MemUsedPct,
			HeapMB:       r.HeapMB,
			Goroutines:   r.Goroutines,
			HostStats:    r.HostStats,
		}
	}
	return resp
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Handler returns the HTTP mux implementing the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /workloads", s.handleWorkloads)
	mux.HandleFunc("GET /windows", s.handleWindows)
	mux.HandleFunc("POST /rate", s.handleRate)
	mux.HandleFunc("POST /mixture", s.handleMixture)
	mux.HandleFunc("POST /pause", s.handlePause)
	mux.HandleFunc("POST /resume", s.handleResume)
	mux.HandleFunc("POST /benchmark", s.handleStartBenchmark)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": err.Error()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	m, err := s.lookup(r.URL.Query().Get("workload"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, s.snapshotToResponse(m))
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []StatusResponse
	for _, m := range s.Managers() {
		out = append(out, s.snapshotToResponse(m))
	}
	writeJSON(w, out)
}

// WindowPoint is one per-second throughput observation for plotting.
type WindowPoint struct {
	Second    int     `json:"second"`
	TPS       float64 `json:"tps"`
	AvgLatMS  float64 `json:"avg_latency_ms"`
	Aborted   int64   `json:"aborted"`
	Committed int64   `json:"committed"`
}

func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	m, err := s.lookup(r.URL.Query().Get("workload"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	windows := m.Collector().Windows()
	dur := m.Collector().WindowDuration()
	out := make([]WindowPoint, 0, len(windows))
	for _, win := range windows {
		out = append(out, WindowPoint{
			Second:    win.Index,
			TPS:       win.TPS(dur),
			AvgLatMS:  msOf(win.AvgLatency()),
			Aborted:   win.Aborted,
			Committed: win.Committed,
		})
	}
	writeJSON(w, out)
}

// rateRequest is the POST /rate payload.
type rateRequest struct {
	Workload  string  `json:"workload"`
	TPS       float64 `json:"tps"`
	Unlimited bool    `json:"unlimited"`
}

func (s *Server) handleRate(w http.ResponseWriter, r *http.Request) {
	var req rateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if req.Unlimited {
		m.SetRate(0)
	} else {
		m.SetRate(req.TPS)
	}
	writeJSON(w, s.snapshotToResponse(m))
}

// mixtureRequest is the POST /mixture payload: explicit weights or a named
// preset ("default", "readonly", "writeheavy").
type mixtureRequest struct {
	Workload string    `json:"workload"`
	Weights  []float64 `json:"weights"`
	Preset   string    `json:"preset"`
}

// PresetMixer is implemented by benchmarks that provide the game's preset
// mixtures.
type PresetMixer interface {
	ReadOnlyMix() []float64
	WriteHeavyMix() []float64
}

func (s *Server) handleMixture(w http.ResponseWriter, r *http.Request) {
	var req mixtureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	switch strings.ToLower(req.Preset) {
	case "", "custom":
		if req.Weights == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("api: weights required without a preset"))
			return
		}
		m.SetMix(req.Weights)
	case "default":
		m.SetMix(nil)
	case "readonly", "read-only":
		mix, err := presetOf(m, true)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		m.SetMix(mix)
	case "writeheavy", "super-writes", "write-heavy":
		mix, err := presetOf(m, false)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		m.SetMix(mix)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("api: unknown preset %q", req.Preset))
		return
	}
	writeJSON(w, s.snapshotToResponse(m))
}

// presetOf resolves a benchmark's preset mixture, deriving one from the
// procedure read-only flags when the benchmark does not provide its own.
func presetOf(m *core.Manager, readonly bool) ([]float64, error) {
	if pm, ok := m.Benchmark().(PresetMixer); ok {
		if readonly {
			return pm.ReadOnlyMix(), nil
		}
		return pm.WriteHeavyMix(), nil
	}
	procs := m.Benchmark().Procedures()
	defaults := m.Benchmark().DefaultMix()
	mix := make([]float64, len(procs))
	any := false
	for i, p := range procs {
		if p.ReadOnly == readonly {
			mix[i] = defaults[i]
			if defaults[i] > 0 {
				any = true
			}
		}
	}
	if !any {
		return nil, fmt.Errorf("api: %s has no %s transactions with default weight",
			m.Benchmark().Name(), presetName(readonly))
	}
	return mix, nil
}

func presetName(readonly bool) string {
	if readonly {
		return "read-only"
	}
	return "write-heavy"
}

type workloadRequest struct {
	Workload string `json:"workload"`
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	var req workloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	m.Pause()
	writeJSON(w, s.snapshotToResponse(m))
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	var req workloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.lookup(req.Workload)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	m.Resume()
	writeJSON(w, s.snapshotToResponse(m))
}

func (s *Server) handleStartBenchmark(w http.ResponseWriter, r *http.Request) {
	if s.StartWorkload == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("api: dynamic workload start not enabled"))
		return
	}
	var req StartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.StartWorkload(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.Add(m)
	writeJSON(w, s.snapshotToResponse(m))
}
