package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"benchpress/internal/cluster"
)

// Cluster endpoints (registered only when the server runs in coordinator
// mode, see EnableCluster):
//
//	POST   /api/v1/cluster/workers       register a worker agent (201)
//	GET    /api/v1/cluster               merged cluster status
//	GET    /api/v1/cluster/workers       per-worker status list
//	DELETE /api/v1/cluster/workers/{id}  evict a worker (rebalances shares)
//	GET/POST /api/v1/cluster/rate        read / set the aggregate rate
//	GET/POST /api/v1/cluster/mixture     read / set the cluster-wide mixture
//	POST   /api/v1/cluster/pause         pause arrivals on every worker
//	POST   /api/v1/cluster/resume        resume arrivals on every worker
//	GET    /api/v1/cluster/windows       merged per-window trajectory
//	GET    /api/v1/cluster/stream        merged live SSE window feed
//
// The merged feed has the same frame shape as a single workload's stream
// (workload name "cluster"), so BenchPress front-ends consume either without
// caring how many load generators are behind it.

// EnableCluster switches the server into coordinator mode: co merges worker
// stats and fans controls out; wireAddr is the control-wire TCP address
// advertised to registering workers.
func (s *Server) EnableCluster(co *cluster.Coordinator, wireAddr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cluster = co
	s.clusterWire = wireAddr
}

// clusterCoord returns the coordinator, writing the error response when the
// server is not in coordinator mode.
func (s *Server) clusterCoord(w http.ResponseWriter) (*cluster.Coordinator, bool) {
	s.mu.RLock()
	co := s.cluster
	s.mu.RUnlock()
	if co == nil {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: cluster mode not enabled on this server"))
		return nil, false
	}
	return co, true
}

func (s *Server) v1ClusterRegister(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	var req cluster.RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	id, err := co.Register(req.Name, req.Benchmark, req.DB)
	if err != nil {
		writeErr(w, http.StatusConflict, "conflict", err)
		return
	}
	s.mu.RLock()
	wire := s.clusterWire
	s.mu.RUnlock()
	writeJSON(w, http.StatusCreated, cluster.RegisterResponse{
		WorkerID:    id,
		WireAddr:    wire,
		WindowUS:    co.WindowDuration().Microseconds(),
		FlushUS:     0, // authoritative cadences arrive with the wire Welcome
		HeartbeatUS: 0,
	})
}

// ClusterStatusResponse is the merged cluster status payload: the
// coordinator's state plus the cluster-cumulative latency digest in
// milliseconds.
type ClusterStatusResponse struct {
	cluster.ClusterStatus
	LatCount int64   `json:"lat_count"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

func clusterStatusResponse(co *cluster.Coordinator) ClusterStatusResponse {
	st := co.Status()
	return ClusterStatusResponse{
		ClusterStatus: st,
		LatCount:      st.Latency.Count,
		MeanMS:        msOf(st.Latency.Mean),
		P50MS:         msOf(st.Latency.P50),
		P95MS:         msOf(st.Latency.P95),
		P99MS:         msOf(st.Latency.P99),
		MaxMS:         msOf(st.Latency.Max),
	}
}

func (s *Server) v1ClusterStatus(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, clusterStatusResponse(co))
}

func (s *Server) v1ClusterWorkers(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, co.Status().Workers)
}

func (s *Server) v1ClusterEvict(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("api: invalid worker id %q", r.PathValue("id")))
		return
	}
	if !co.EvictWorker(id) {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Errorf("api: unknown worker id %d", id))
		return
	}
	writeJSON(w, http.StatusOK, co.Status().Workers)
}

// ClusterRateState is the GET/POST /api/v1/cluster/rate payload. TPS is the
// aggregate cluster target; Share is what each connected worker receives.
type ClusterRateState struct {
	TPS       float64 `json:"tps"`
	Unlimited bool    `json:"unlimited"`
	Paused    bool    `json:"paused"`
	Share     float64 `json:"share"`
}

func clusterRateState(co *cluster.Coordinator) ClusterRateState {
	rate := co.TargetRate()
	return ClusterRateState{
		TPS:       rate,
		Unlimited: rate <= 0,
		Paused:    co.Paused(),
		Share:     co.RateShare(),
	}
}

func (s *Server) v1ClusterGetRate(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, clusterRateState(co))
}

func (s *Server) v1ClusterSetRate(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	var req rateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.TPS < 0 {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("api: rate must be non-negative, got %v", req.TPS))
		return
	}
	if req.Unlimited {
		co.SetRate(0)
	} else {
		co.SetRate(req.TPS)
	}
	writeJSON(w, http.StatusOK, clusterRateState(co))
}

// ClusterMixtureState is the GET/POST /api/v1/cluster/mixture payload.
type ClusterMixtureState struct {
	Types   []string  `json:"types"`
	Weights []float64 `json:"weights,omitempty"`
}

func (s *Server) v1ClusterGetMixture(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, ClusterMixtureState{Types: co.Types(), Weights: co.Mix()})
}

func (s *Server) v1ClusterSetMixture(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	var req mixtureRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	for i, wt := range req.Weights {
		if wt < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("api: mixture weight %d must be non-negative, got %v", i, wt))
			return
		}
	}
	co.SetMix(req.Weights)
	writeJSON(w, http.StatusOK, ClusterMixtureState{Types: co.Types(), Weights: co.Mix()})
}

func (s *Server) v1ClusterPause(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	co.SetPaused(true)
	writeJSON(w, http.StatusOK, clusterRateState(co))
}

func (s *Server) v1ClusterResume(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	co.SetPaused(false)
	writeJSON(w, http.StatusOK, clusterRateState(co))
}

func (s *Server) v1ClusterWindows(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	dur := co.WindowDuration()
	wins := co.WindowsSince(0)
	out := make([]WindowPoint, 0, len(wins))
	for _, win := range wins {
		out = append(out, pointOf(win, dur))
	}
	writeJSON(w, http.StatusOK, out)
}

// v1ClusterStream serves the merged SSE feed. The frames have the same shape
// as a single workload's stream; rotation happens on the coordinator's own
// clock, so a slow or dead worker never stalls this feed — its numbers just
// arrive in a later window.
func (s *Server) v1ClusterStream(w http.ResponseWriter, r *http.Request) {
	co, ok := s.clusterCoord(w)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "internal",
			fmt.Errorf("api: streaming unsupported by this connection"))
		return
	}
	next := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("api: invalid from=%q", f))
			return
		}
		next = n
	}
	sig, cancel := co.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	dur := co.WindowDuration()
	ticker := time.NewTicker(dur)
	defer ticker.Stop()
	enc := json.NewEncoder(w)
	for {
		wins := co.WindowsSince(next)
		for _, win := range wins {
			fmt.Fprintf(w, "id: %d\nevent: window\ndata: ", win.Index)
			enc.Encode(streamFrame("cluster", co.Types(), win, dur)) // Encode appends the \n
			fmt.Fprint(w, "\n")
			next = win.Index + 1
		}
		if len(wins) == 0 {
			fmt.Fprint(w, ": heartbeat\n\n")
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-sig:
		case <-ticker.C:
		}
	}
}
