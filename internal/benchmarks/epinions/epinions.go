// Package epinions ports the Epinions benchmark (Table 1: "Social
// Networking"): consumer reviews with a web-of-trust graph, whose
// characteristic queries join reviews against the reader's trust network.
package epinions

import (
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseUsers         = 2000
	baseItems         = 1000
	reviewsPerItem    = 10
	trustEdgesPerUser = 10
)

// Benchmark is the Epinions workload instance.
type Benchmark struct {
	users, items int64
	reviews      int64
	userChoose   *common.ScrambledZipfian
	itemChoose   *common.ScrambledZipfian
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	users := int64(common.ScaleCount(baseUsers, scale, 100))
	items := int64(common.ScaleCount(baseItems, scale, 50))
	return &Benchmark{
		users:      users,
		items:      items,
		userChoose: common.NewScrambledZipfian(users),
		itemChoose: common.NewScrambledZipfian(items),
	}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "epinions" }

// DefaultMix implements core.Benchmark.
func (b *Benchmark) DefaultMix() []float64 {
	// GetReviewItemById, GetReviewsByUser, GetAverageRatingByTrustedUser,
	// GetItemAverageRating, GetItemReviewsByTrustedUser, UpdateUserName,
	// UpdateItemTitle, UpdateReviewRating, UpdateTrustRating
	return []float64{10, 10, 10, 10, 10, 20, 10, 15, 5}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE useracct (
			u_id INT NOT NULL,
			name VARCHAR(128) NOT NULL,
			email VARCHAR(128),
			PRIMARY KEY (u_id))`,
		`CREATE TABLE item (
			i_id INT NOT NULL,
			title VARCHAR(128) NOT NULL,
			description VARCHAR(512),
			PRIMARY KEY (i_id))`,
		`CREATE TABLE review (
			a_id INT NOT NULL AUTO_INCREMENT,
			u_id INT NOT NULL,
			i_id INT NOT NULL,
			rating INT,
			rank INT,
			comment VARCHAR(256),
			PRIMARY KEY (a_id))`,
		"CREATE INDEX idx_review_item ON review (i_id)",
		"CREATE INDEX idx_review_user ON review (u_id)",
		`CREATE TABLE trust (
			source_u_id INT NOT NULL,
			target_u_id INT NOT NULL,
			trust INT NOT NULL,
			creation_date TIMESTAMP,
			PRIMARY KEY (source_u_id, target_u_id))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for u := int64(0); u < b.users; u++ {
		if err := l.Exec("INSERT INTO useracct VALUES (?, ?, ?)",
			u, common.LString(rng, 6, 16), common.LString(rng, 8, 16)+"@example.com"); err != nil {
			return err
		}
		seen := map[int64]bool{u: true}
		for e := 0; e < trustEdgesPerUser; e++ {
			tgt := b.userChoose.Next(rng)
			if seen[tgt] {
				continue
			}
			seen[tgt] = true
			if err := l.Exec("INSERT INTO trust VALUES (?, ?, ?, NOW())",
				u, tgt, rng.Intn(2)); err != nil {
				return err
			}
		}
	}
	for i := int64(0); i < b.items; i++ {
		if err := l.Exec("INSERT INTO item VALUES (?, ?, ?)",
			i, common.Text(rng, 4), common.Text(rng, 30)); err != nil {
			return err
		}
		for r := 0; r < reviewsPerItem; r++ {
			b.reviews++
			if err := l.Exec(
				"INSERT INTO review (u_id, i_id, rating, rank, comment) VALUES (?, ?, ?, ?, ?)",
				b.userChoose.Next(rng), i, rng.Intn(6), rng.Intn(100),
				common.Text(rng, 12)); err != nil {
				return err
			}
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "GetReviewItemById", ReadOnly: true, Fn: b.getReviewItemByID},
		{Name: "GetReviewsByUser", ReadOnly: true, Fn: b.getReviewsByUser},
		{Name: "GetAverageRatingByTrustedUser", ReadOnly: true, Fn: b.getAverageRatingByTrustedUser},
		{Name: "GetItemAverageRating", ReadOnly: true, Fn: b.getItemAverageRating},
		{Name: "GetItemReviewsByTrustedUser", ReadOnly: true, Fn: b.getItemReviewsByTrustedUser},
		{Name: "UpdateUserName", Fn: b.updateUserName},
		{Name: "UpdateItemTitle", Fn: b.updateItemTitle},
		{Name: "UpdateReviewRating", Fn: b.updateReviewRating},
		{Name: "UpdateTrustRating", Fn: b.updateTrustRating},
	}
}

func (b *Benchmark) getReviewItemByID(conn *dbdriver.Conn, rng *rand.Rand) error {
	iid := b.itemChoose.Next(rng)
	if _, err := conn.QueryRow("SELECT * FROM item WHERE i_id = ?", iid); err != nil {
		return err
	}
	_, err := conn.Query("SELECT * FROM review WHERE i_id = ? ORDER BY rank LIMIT 10", iid)
	return err
}

func (b *Benchmark) getReviewsByUser(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Query("SELECT * FROM review WHERE u_id = ? ORDER BY a_id LIMIT 10",
		b.userChoose.Next(rng))
	return err
}

func (b *Benchmark) getAverageRatingByTrustedUser(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow(`SELECT AVG(r.rating)
		FROM review r JOIN trust t ON r.u_id = t.target_u_id
		WHERE r.i_id = ? AND t.source_u_id = ? AND t.trust = 1`,
		b.itemChoose.Next(rng), b.userChoose.Next(rng))
	return err
}

func (b *Benchmark) getItemAverageRating(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT AVG(rating) FROM review WHERE i_id = ?", b.itemChoose.Next(rng))
	return err
}

func (b *Benchmark) getItemReviewsByTrustedUser(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Query(`SELECT r.a_id, r.rating, r.comment
		FROM review r JOIN trust t ON r.u_id = t.target_u_id
		WHERE r.i_id = ? AND t.source_u_id = ? ORDER BY r.rating DESC LIMIT 10`,
		b.itemChoose.Next(rng), b.userChoose.Next(rng))
	return err
}

func (b *Benchmark) updateUserName(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE useracct SET name = ? WHERE u_id = ?",
		common.LString(rng, 6, 16), b.userChoose.Next(rng))
	return err
}

func (b *Benchmark) updateItemTitle(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE item SET title = ? WHERE i_id = ?",
		common.Text(rng, 4), b.itemChoose.Next(rng))
	return err
}

func (b *Benchmark) updateReviewRating(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE review SET rating = ? WHERE i_id = ? AND u_id = ?",
		rng.Intn(6), b.itemChoose.Next(rng), b.userChoose.Next(rng))
	return err
}

func (b *Benchmark) updateTrustRating(conn *dbdriver.Conn, rng *rand.Rand) error {
	src, tgt := b.userChoose.Next(rng), b.userChoose.Next(rng)
	_, err := conn.Exec("UPDATE trust SET trust = ? WHERE source_u_id = ? AND target_u_id = ?",
		rng.Intn(2), src, tgt)
	return err
}

func init() {
	core.RegisterBenchmark("epinions", func(scale float64) core.Benchmark { return New(scale) })
}
