// Package jpab ports the JPA Benchmark (Table 1: "Object-Relational
// Mapping"): ORM-style entity CRUD. The original drives a JPA provider; the
// port reproduces the provider's generated access pattern - entity tables
// with surrogate keys, per-entity SELECT-then-UPDATE, and a sequence table,
// which is exactly what an ORM emits over JDBC.
package jpab

import (
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// basePersons is the entity count at scale 1.
const basePersons = 5000

// Benchmark is the JPAB workload instance.
type Benchmark struct {
	persons atomic.Int64
	initial int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	b := &Benchmark{initial: int64(common.ScaleCount(basePersons, scale, 100))}
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "jpab" }

// DefaultMix implements core.Benchmark (JPAB's basic test mixes persist,
// retrieve, update, delete 25/45/20/10).
func (b *Benchmark) DefaultMix() []float64 {
	// Persist, Retrieve, Update, Delete
	return []float64{25, 45, 20, 10}
}

// CreateSchema implements core.Benchmark: the table layout a JPA provider
// generates for a Person entity with an embedded address.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE jpab_person (
			id BIGINT NOT NULL,
			firstname VARCHAR(32),
			lastname VARCHAR(32),
			phone VARCHAR(16),
			street VARCHAR(64),
			city VARCHAR(32),
			state VARCHAR(2),
			zip VARCHAR(10),
			version INT NOT NULL,
			PRIMARY KEY (id))`,
		"CREATE INDEX idx_person_lastname ON jpab_person (lastname)",
		`CREATE TABLE jpab_sequence (
			seq_name VARCHAR(32) NOT NULL,
			seq_count BIGINT NOT NULL,
			PRIMARY KEY (seq_name))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for id := int64(1); id <= b.initial; id++ {
		if err := l.Exec(
			"INSERT INTO jpab_person VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
			id, common.LString(rng, 4, 10), common.LString(rng, 4, 12),
			common.NString(rng, 10, 10), common.Text(rng, 3),
			common.LString(rng, 5, 10), "CA", common.NString(rng, 5, 5)); err != nil {
			return err
		}
	}
	if err := l.Exec("INSERT INTO jpab_sequence VALUES ('person', ?)", b.initial); err != nil {
		return err
	}
	b.persons.Store(b.initial)
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "Persist", Fn: b.persist},
		{Name: "Retrieve", ReadOnly: true, Fn: b.retrieve},
		{Name: "Update", Fn: b.update},
		{Name: "Delete", Fn: b.delete},
	}
}

// anyID draws an id in the live range (some may be deleted; ORM handles the
// miss, and so do we).
func (b *Benchmark) anyID(rng *rand.Rand) int64 {
	return 1 + rng.Int63n(b.persons.Load())
}

// persist allocates an id from the sequence table (as JPA TABLE generators
// do) and inserts the entity.
func (b *Benchmark) persist(conn *dbdriver.Conn, rng *rand.Rand) error {
	row, err := conn.QueryRow("SELECT seq_count FROM jpab_sequence WHERE seq_name = 'person' FOR UPDATE")
	if err != nil || row == nil {
		return err
	}
	id := row[0].Int() + 1
	if _, err := conn.Exec("UPDATE jpab_sequence SET seq_count = ? WHERE seq_name = 'person'", id); err != nil {
		return err
	}
	if _, err := conn.Exec("INSERT INTO jpab_person VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
		id, common.LString(rng, 4, 10), common.LString(rng, 4, 12),
		common.NString(rng, 10, 10), common.Text(rng, 3),
		common.LString(rng, 5, 10), "CA", common.NString(rng, 5, 5)); err != nil {
		return err
	}
	if id > b.persons.Load() {
		b.persons.Store(id)
	}
	return nil
}

// retrieve loads an entity by id.
func (b *Benchmark) retrieve(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT * FROM jpab_person WHERE id = ?", b.anyID(rng))
	return err
}

// update does the ORM's optimistic-locking dance: read entity + version,
// then update with a version check.
func (b *Benchmark) update(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.anyID(rng)
	row, err := conn.QueryRow("SELECT version FROM jpab_person WHERE id = ?", id)
	if err != nil {
		return err
	}
	if row == nil {
		return nil // deleted entity; no-op like EntityManager.find miss
	}
	v := row[0].Int()
	res, err := conn.Exec(
		"UPDATE jpab_person SET phone = ?, version = ? WHERE id = ? AND version = ?",
		common.NString(rng, 10, 10), v+1, id, v)
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return core.ErrExpectedAbort // optimistic lock failure
	}
	return nil
}

// delete removes an entity by id.
func (b *Benchmark) delete(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("DELETE FROM jpab_person WHERE id = ?", b.anyID(rng))
	return err
}

func init() {
	core.RegisterBenchmark("jpab", func(scale float64) core.Benchmark { return New(scale) })
}
