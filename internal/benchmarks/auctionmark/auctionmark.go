// Package auctionmark ports the AuctionMark benchmark (Table 1: "On-line
// Auctions"): an eBay-style auction site. This port implements the six core
// transactions of the full fourteen-transaction benchmark (item browsing,
// bidding, listing, commenting, and seller updates), which carry the bulk of
// the default mixture's weight.
package auctionmark

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseUsers      = 2000
	baseItems      = 5000
	baseCategories = 20
	bidsPerItem    = 3
)

// Item status values.
const (
	statusOpen   = 0
	statusClosed = 2
)

// Benchmark is the AuctionMark workload instance.
type Benchmark struct {
	users      int64
	items      atomic.Int64
	initItems  int64
	categories int64
	userChoose *common.ScrambledZipfian
	itemChoose *common.ScrambledZipfian
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	users := int64(common.ScaleCount(baseUsers, scale, 100))
	items := int64(common.ScaleCount(baseItems, scale, 200))
	b := &Benchmark{
		users:      users,
		initItems:  items,
		categories: int64(common.ScaleCount(baseCategories, scale, 5)),
		userChoose: common.NewScrambledZipfian(users),
		itemChoose: common.NewScrambledZipfian(items),
	}
	b.items.Store(items)
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "auctionmark" }

// DefaultMix implements core.Benchmark.
func (b *Benchmark) DefaultMix() []float64 {
	// CloseAuctions, GetItem, GetUserInfo, NewBid, NewComment, NewItem, UpdateItem
	return []float64{2, 35, 20, 24, 5, 9, 5}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE useracct (
			u_id INT NOT NULL,
			u_rating INT NOT NULL,
			u_balance DOUBLE NOT NULL,
			u_created TIMESTAMP,
			PRIMARY KEY (u_id))`,
		`CREATE TABLE category (
			c_id INT NOT NULL,
			c_name VARCHAR(64),
			c_parent_id INT,
			PRIMARY KEY (c_id))`,
		`CREATE TABLE item (
			i_id BIGINT NOT NULL,
			i_u_id INT NOT NULL,
			i_c_id INT NOT NULL,
			i_name VARCHAR(128),
			i_description VARCHAR(255),
			i_initial_price DOUBLE NOT NULL,
			i_current_price DOUBLE NOT NULL,
			i_num_bids INT NOT NULL,
			i_end_date BIGINT NOT NULL,
			i_status INT NOT NULL,
			PRIMARY KEY (i_id))`,
		"CREATE INDEX idx_item_seller ON item (i_u_id)",
		"CREATE INDEX idx_item_category ON item (i_c_id)",
		`CREATE TABLE item_bid (
			ib_id BIGINT NOT NULL AUTO_INCREMENT,
			ib_i_id BIGINT NOT NULL,
			ib_buyer_id INT NOT NULL,
			ib_bid DOUBLE NOT NULL,
			ib_max_bid DOUBLE NOT NULL,
			ib_created TIMESTAMP,
			PRIMARY KEY (ib_id))`,
		"CREATE INDEX idx_bid_item ON item_bid (ib_i_id)",
		"CREATE INDEX idx_bid_buyer ON item_bid (ib_buyer_id)",
		`CREATE TABLE item_comment (
			ic_id BIGINT NOT NULL AUTO_INCREMENT,
			ic_i_id BIGINT NOT NULL,
			ic_buyer_id INT NOT NULL,
			ic_question VARCHAR(128),
			ic_created TIMESTAMP,
			PRIMARY KEY (ic_id))`,
		"CREATE INDEX idx_comment_item ON item_comment (ic_i_id)",
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 2000)
	if err != nil {
		return err
	}
	for c := int64(0); c < b.categories; c++ {
		if err := l.Exec("INSERT INTO category VALUES (?, ?, NULL)",
			c, common.Text(rng, 2)); err != nil {
			return err
		}
	}
	for u := int64(0); u < b.users; u++ {
		if err := l.Exec("INSERT INTO useracct VALUES (?, ?, ?, NOW())",
			u, rng.Intn(10000), rng.Float64()*1000); err != nil {
			return err
		}
	}
	for i := int64(0); i < b.initItems; i++ {
		price := 1 + rng.Float64()*999
		status := statusOpen
		if common.FlipCoin(rng, 0.3) {
			status = statusClosed
		}
		if err := l.Exec("INSERT INTO item VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
			i, b.userChoose.Next(rng), rng.Int63n(b.categories),
			common.Text(rng, 4), common.Text(rng, 20),
			price, price*(1+rng.Float64()), bidsPerItem, rng.Int63n(365*24), status); err != nil {
			return err
		}
		for bd := 0; bd < bidsPerItem; bd++ {
			bid := price * (1 + rng.Float64())
			if err := l.Exec(
				"INSERT INTO item_bid (ib_i_id, ib_buyer_id, ib_bid, ib_max_bid, ib_created) VALUES (?, ?, ?, ?, NOW())",
				i, b.userChoose.Next(rng), bid, bid*1.1); err != nil {
				return err
			}
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "CloseAuctions", Fn: b.closeAuctions},
		{Name: "GetItem", ReadOnly: true, Fn: b.getItem},
		{Name: "GetUserInfo", ReadOnly: true, Fn: b.getUserInfo},
		{Name: "NewBid", Fn: b.newBid},
		{Name: "NewComment", Fn: b.newComment},
		{Name: "NewItem", Fn: b.newItem},
		{Name: "UpdateItem", Fn: b.updateItem},
	}
}

func (b *Benchmark) randItem(rng *rand.Rand) int64 { return b.itemChoose.Next(rng) }

// closeAuctions is AuctionMark's background sweep: retire a batch of open
// auctions whose end date has passed, recording the winning (highest) bid as
// the final price.
func (b *Benchmark) closeAuctions(conn *dbdriver.Conn, rng *rand.Rand) error {
	horizon := rng.Int63n(365 * 24)
	expired, err := conn.Query(
		"SELECT i_id FROM item WHERE i_status = ? AND i_end_date < ? LIMIT 5 FOR UPDATE",
		statusOpen, horizon)
	if err != nil {
		return err
	}
	for _, row := range expired.Rows {
		id := row[0].Int()
		top, err := conn.QueryRow(
			"SELECT MAX(ib_bid) FROM item_bid WHERE ib_i_id = ?", id)
		if err != nil {
			return err
		}
		if top != nil && !top[0].IsNull() {
			if _, err := conn.Exec(
				"UPDATE item SET i_status = ?, i_current_price = ? WHERE i_id = ?",
				statusClosed, top[0].Float(), id); err != nil {
				return err
			}
		} else if _, err := conn.Exec(
			"UPDATE item SET i_status = ? WHERE i_id = ?", statusClosed, id); err != nil {
			return err
		}
	}
	return nil
}

func (b *Benchmark) getItem(conn *dbdriver.Conn, rng *rand.Rand) error {
	i := b.randItem(rng)
	row, err := conn.QueryRow("SELECT * FROM item WHERE i_id = ?", i)
	if err != nil || row == nil {
		return err
	}
	_, err = conn.QueryRow("SELECT u_id, u_rating FROM useracct WHERE u_id = ?", row[1].Int())
	return err
}

func (b *Benchmark) getUserInfo(conn *dbdriver.Conn, rng *rand.Rand) error {
	u := b.userChoose.Next(rng)
	if _, err := conn.QueryRow("SELECT * FROM useracct WHERE u_id = ?", u); err != nil {
		return err
	}
	if _, err := conn.Query(
		"SELECT i_id, i_name, i_current_price FROM item WHERE i_u_id = ? LIMIT 10", u); err != nil {
		return err
	}
	_, err := conn.Query(
		"SELECT ib_i_id, ib_bid FROM item_bid WHERE ib_buyer_id = ? ORDER BY ib_id DESC LIMIT 10", u)
	return err
}

// newBid validates the item is open and the bid beats the current price,
// then records it.
func (b *Benchmark) newBid(conn *dbdriver.Conn, rng *rand.Rand) error {
	i := b.randItem(rng)
	buyer := b.userChoose.Next(rng)
	row, err := conn.QueryRow(
		"SELECT i_current_price, i_status FROM item WHERE i_id = ? FOR UPDATE", i)
	if err != nil {
		return err
	}
	if row == nil || row[1].Int() != statusOpen {
		return core.ErrExpectedAbort // auction gone or closed
	}
	bid := row[0].Float() * (1 + rng.Float64()*0.1)
	if _, err := conn.Exec(
		"INSERT INTO item_bid (ib_i_id, ib_buyer_id, ib_bid, ib_max_bid, ib_created) VALUES (?, ?, ?, ?, NOW())",
		i, buyer, bid, bid*1.1); err != nil {
		return err
	}
	_, err = conn.Exec(
		"UPDATE item SET i_current_price = ?, i_num_bids = i_num_bids + 1 WHERE i_id = ?", bid, i)
	return err
}

func (b *Benchmark) newComment(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec(
		"INSERT INTO item_comment (ic_i_id, ic_buyer_id, ic_question, ic_created) VALUES (?, ?, ?, NOW())",
		b.randItem(rng), b.userChoose.Next(rng), common.Text(rng, 10))
	return err
}

func (b *Benchmark) newItem(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.items.Add(1) - 1
	price := 1 + rng.Float64()*999
	_, err := conn.Exec("INSERT INTO item VALUES (?, ?, ?, ?, ?, ?, ?, 0, ?, ?)",
		id, b.userChoose.Next(rng), rng.Int63n(b.categories),
		common.Text(rng, 4), common.Text(rng, 20), price, price,
		rng.Int63n(365*24), statusOpen)
	if err != nil {
		return fmt.Errorf("auctionmark: new item collision: %v: %w", err, core.ErrExpectedAbort)
	}
	return nil
}

func (b *Benchmark) updateItem(conn *dbdriver.Conn, rng *rand.Rand) error {
	res, err := conn.Exec("UPDATE item SET i_description = ? WHERE i_id = ?",
		common.Text(rng, 20), b.randItem(rng))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return core.ErrExpectedAbort
	}
	return nil
}

func init() {
	core.RegisterBenchmark("auctionmark", func(scale float64) core.Benchmark { return New(scale) })
}
