// Package wikipedia ports the Wikipedia benchmark (Table 1: "On-line
// Encyclopedia"): page reads dominate, with authenticated readers touching
// their watchlists and occasional article edits appending a new revision.
package wikipedia

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseUsers = 1000
	basePages = 1000
)

// Benchmark is the Wikipedia workload instance.
type Benchmark struct {
	users, pages int64
	nextText     atomic.Int64
	nextRev      atomic.Int64
	pageChoose   *common.ScrambledZipfian
	userChoose   *common.ScrambledZipfian
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	users := int64(common.ScaleCount(baseUsers, scale, 50))
	pages := int64(common.ScaleCount(basePages, scale, 50))
	return &Benchmark{
		users:      users,
		pages:      pages,
		pageChoose: common.NewScrambledZipfian(pages),
		userChoose: common.NewScrambledZipfian(users),
	}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "wikipedia" }

// DefaultMix implements core.Benchmark (trace-derived: anonymous reads
// dominate).
func (b *Benchmark) DefaultMix() []float64 {
	// AddWatchList, GetPageAnonymous, GetPageAuthenticated, RemoveWatchList, UpdatePage
	return []float64{1, 92, 4, 1, 2}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE useracct (
			user_id INT NOT NULL,
			user_name VARCHAR(255) NOT NULL,
			user_touched TIMESTAMP,
			PRIMARY KEY (user_id))`,
		`CREATE TABLE page (
			page_id INT NOT NULL,
			page_namespace INT NOT NULL,
			page_title VARCHAR(255) NOT NULL,
			page_latest INT NOT NULL,
			page_touched TIMESTAMP,
			PRIMARY KEY (page_id))`,
		"CREATE UNIQUE INDEX idx_page_ns_title ON page (page_namespace, page_title)",
		`CREATE TABLE revision (
			rev_id INT NOT NULL,
			rev_page INT NOT NULL,
			rev_text_id INT NOT NULL,
			rev_user INT NOT NULL,
			rev_timestamp TIMESTAMP,
			PRIMARY KEY (rev_id))`,
		"CREATE INDEX idx_revision_page ON revision (rev_page)",
		`CREATE TABLE text (
			old_id INT NOT NULL,
			old_text CLOB,
			old_page INT,
			PRIMARY KEY (old_id))`,
		`CREATE TABLE watchlist (
			wl_user INT NOT NULL,
			wl_namespace INT NOT NULL,
			wl_title VARCHAR(255) NOT NULL,
			PRIMARY KEY (wl_user, wl_namespace, wl_title))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// pageTitle derives a deterministic title for a page ordinal.
func pageTitle(p int64) string { return fmt.Sprintf("Page_%06d", p) }

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for u := int64(0); u < b.users; u++ {
		if err := l.Exec("INSERT INTO useracct VALUES (?, ?, NOW())",
			u, fmt.Sprintf("user_%06d", u)); err != nil {
			return err
		}
	}
	rev := int64(0)
	for p := int64(0); p < b.pages; p++ {
		rev++
		if err := l.Exec("INSERT INTO text VALUES (?, ?, ?)",
			rev, common.Text(rng, 50), p); err != nil {
			return err
		}
		if err := l.Exec("INSERT INTO revision VALUES (?, ?, ?, ?, NOW())",
			rev, p, rev, rng.Int63n(b.users)); err != nil {
			return err
		}
		if err := l.Exec("INSERT INTO page VALUES (?, ?, ?, ?, NOW())",
			p, p%4, pageTitle(p), rev); err != nil {
			return err
		}
		// A few distinct watchers per page (deduplicated client-side: the
		// loader's batch transaction must never see a unique violation).
		seen := map[int64]bool{}
		var watchers []int64
		for len(watchers) < 2 {
			u := rng.Int63n(b.users)
			if !seen[u] {
				seen[u] = true
				watchers = append(watchers, u)
			}
		}
		for _, u := range watchers {
			if err := l.Exec("INSERT INTO watchlist VALUES (?, ?, ?)", u, p%4, pageTitle(p)); err != nil {
				return err
			}
		}
	}
	b.nextText.Store(rev)
	b.nextRev.Store(rev)
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "AddWatchList", Fn: b.addWatchList},
		{Name: "GetPageAnonymous", ReadOnly: true, Fn: b.getPageAnonymous},
		{Name: "GetPageAuthenticated", ReadOnly: true, Fn: b.getPageAuthenticated},
		{Name: "RemoveWatchList", Fn: b.removeWatchList},
		{Name: "UpdatePage", Fn: b.updatePage},
	}
}

// getPage fetches a page with its latest revision and text.
func (b *Benchmark) getPage(conn *dbdriver.Conn, rng *rand.Rand) ([]int64, error) {
	p := b.pageChoose.Next(rng)
	row, err := conn.QueryRow(
		"SELECT page_id, page_latest FROM page WHERE page_namespace = ? AND page_title = ?",
		p%4, pageTitle(p))
	if err != nil || row == nil {
		return nil, err
	}
	pageID, latest := row[0].Int(), row[1].Int()
	rrow, err := conn.QueryRow("SELECT rev_text_id FROM revision WHERE rev_id = ?", latest)
	if err != nil || rrow == nil {
		return []int64{pageID, latest}, err
	}
	if _, err := conn.QueryRow("SELECT old_text FROM text WHERE old_id = ?", rrow[0].Int()); err != nil {
		return nil, err
	}
	return []int64{pageID, latest}, nil
}

func (b *Benchmark) getPageAnonymous(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := b.getPage(conn, rng)
	return err
}

func (b *Benchmark) getPageAuthenticated(conn *dbdriver.Conn, rng *rand.Rand) error {
	u := b.userChoose.Next(rng)
	if _, err := conn.QueryRow("SELECT * FROM useracct WHERE user_id = ?", u); err != nil {
		return err
	}
	_, err := b.getPage(conn, rng)
	return err
}

func (b *Benchmark) addWatchList(conn *dbdriver.Conn, rng *rand.Rand) error {
	p := b.pageChoose.Next(rng)
	u := b.userChoose.Next(rng)
	if _, err := conn.Exec("INSERT INTO watchlist VALUES (?, ?, ?)", u, p%4, pageTitle(p)); err != nil {
		return fmt.Errorf("wikipedia: already watching: %w", core.ErrExpectedAbort)
	}
	_, err := conn.Exec("UPDATE useracct SET user_touched = NOW() WHERE user_id = ?", u)
	return err
}

func (b *Benchmark) removeWatchList(conn *dbdriver.Conn, rng *rand.Rand) error {
	p := b.pageChoose.Next(rng)
	u := b.userChoose.Next(rng)
	if _, err := conn.Exec("DELETE FROM watchlist WHERE wl_user = ? AND wl_namespace = ? AND wl_title = ?",
		u, p%4, pageTitle(p)); err != nil {
		return err
	}
	_, err := conn.Exec("UPDATE useracct SET user_touched = NOW() WHERE user_id = ?", u)
	return err
}

// updatePage appends a new revision: insert text, insert revision, bump
// page_latest, touch watchers.
func (b *Benchmark) updatePage(conn *dbdriver.Conn, rng *rand.Rand) error {
	ids, err := b.getPage(conn, rng)
	if err != nil || ids == nil {
		return err
	}
	pageID := ids[0]
	textID := b.nextText.Add(1)
	revID := b.nextRev.Add(1)
	if _, err := conn.Exec("INSERT INTO text VALUES (?, ?, ?)",
		textID, common.Text(rng, 50), pageID); err != nil {
		return err
	}
	if _, err := conn.Exec("INSERT INTO revision VALUES (?, ?, ?, ?, NOW())",
		revID, pageID, textID, b.userChoose.Next(rng)); err != nil {
		return err
	}
	_, err = conn.Exec("UPDATE page SET page_latest = ?, page_touched = NOW() WHERE page_id = ?",
		revID, pageID)
	return err
}

func init() {
	core.RegisterBenchmark("wikipedia", func(scale float64) core.Benchmark { return New(scale) })
}
