// Package seats ports the SEATS benchmark (Table 1: "On-line Airline
// Ticketing"): customers searching for flights and creating, changing, and
// deleting seat reservations. This port implements the six core
// transactions of the full benchmark (which adds two bulk update profiles).
package seats

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseAirports  = 50
	baseFlights   = 2000
	baseCustomers = 5000
	seatsPerPlane = 150
	reservedLoad  = 30 // seats pre-reserved per flight (about 20% full)
)

// Benchmark is the SEATS workload instance.
type Benchmark struct {
	airports  int64
	flights   int64
	customers int64
	nextResID atomic.Int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{
		airports:  int64(common.ScaleCount(baseAirports, scale, 10)),
		flights:   int64(common.ScaleCount(baseFlights, scale, 50)),
		customers: int64(common.ScaleCount(baseCustomers, scale, 100)),
	}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "seats" }

// DefaultMix implements core.Benchmark.
func (b *Benchmark) DefaultMix() []float64 {
	// DeleteReservation, FindFlights, FindOpenSeats, NewReservation,
	// UpdateCustomer, UpdateReservation
	return []float64{10, 10, 35, 20, 10, 15}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE airport (
			ap_id INT NOT NULL,
			ap_code CHAR(3) NOT NULL,
			ap_city VARCHAR(64),
			PRIMARY KEY (ap_id))`,
		`CREATE TABLE flight (
			f_id INT NOT NULL,
			f_depart_ap_id INT NOT NULL,
			f_arrive_ap_id INT NOT NULL,
			f_depart_time BIGINT NOT NULL,
			f_base_price DOUBLE NOT NULL,
			f_seats_left INT NOT NULL,
			PRIMARY KEY (f_id))`,
		"CREATE INDEX idx_flight_route ON flight (f_depart_ap_id, f_arrive_ap_id, f_depart_time)",
		`CREATE TABLE customer (
			c_id INT NOT NULL,
			c_base_ap_id INT,
			c_balance DOUBLE NOT NULL,
			c_sattr0 VARCHAR(32),
			c_iattr0 BIGINT,
			PRIMARY KEY (c_id))`,
		`CREATE TABLE reservation (
			r_id BIGINT NOT NULL,
			r_c_id INT NOT NULL,
			r_f_id INT NOT NULL,
			r_seat INT NOT NULL,
			r_price DOUBLE NOT NULL,
			PRIMARY KEY (r_id))`,
		"CREATE UNIQUE INDEX idx_reservation_seat ON reservation (r_f_id, r_seat)",
		"CREATE INDEX idx_reservation_customer ON reservation (r_c_id)",
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 2000)
	if err != nil {
		return err
	}
	for a := int64(0); a < b.airports; a++ {
		code := fmt.Sprintf("A%02d", a%100)
		if err := l.Exec("INSERT INTO airport VALUES (?, ?, ?)",
			a, code, common.LString(rng, 6, 14)); err != nil {
			return err
		}
	}
	for c := int64(0); c < b.customers; c++ {
		if err := l.Exec("INSERT INTO customer VALUES (?, ?, ?, ?, ?)",
			c, rng.Int63n(b.airports), 1000.0, common.AString(rng, 8, 32), rng.Int63()); err != nil {
			return err
		}
	}
	var rid int64
	for f := int64(0); f < b.flights; f++ {
		dep := rng.Int63n(b.airports)
		arr := rng.Int63n(b.airports)
		for arr == dep {
			arr = rng.Int63n(b.airports)
		}
		departTime := rng.Int63n(365 * 24) // hour slots within a year
		if err := l.Exec("INSERT INTO flight VALUES (?, ?, ?, ?, ?, ?)",
			f, dep, arr, departTime, 50+rng.Float64()*450,
			seatsPerPlane-reservedLoad); err != nil {
			return err
		}
		// Pre-reserve a block of seats.
		for s := 0; s < reservedLoad; s++ {
			rid++
			if err := l.Exec("INSERT INTO reservation VALUES (?, ?, ?, ?, ?)",
				rid, rng.Int63n(b.customers), f, s+1, 50+rng.Float64()*450); err != nil {
				return err
			}
		}
	}
	b.nextResID.Store(rid)
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "DeleteReservation", Fn: b.deleteReservation},
		{Name: "FindFlights", ReadOnly: true, Fn: b.findFlights},
		{Name: "FindOpenSeats", ReadOnly: true, Fn: b.findOpenSeats},
		{Name: "NewReservation", Fn: b.newReservation},
		{Name: "UpdateCustomer", Fn: b.updateCustomer},
		{Name: "UpdateReservation", Fn: b.updateReservation},
	}
}

// findFlights searches for flights between two airports in a time window.
func (b *Benchmark) findFlights(conn *dbdriver.Conn, rng *rand.Rand) error {
	dep := rng.Int63n(b.airports)
	arr := rng.Int63n(b.airports)
	start := rng.Int63n(365 * 24)
	res, err := conn.Query(`SELECT f.f_id, f.f_depart_time, f.f_base_price, a.ap_code
		FROM flight f JOIN airport a ON a.ap_id = f.f_arrive_ap_id
		WHERE f.f_depart_ap_id = ? AND f.f_arrive_ap_id = ?
		  AND f.f_depart_time BETWEEN ? AND ? LIMIT 20`,
		dep, arr, start, start+72)
	if err != nil {
		return err
	}
	_ = res
	return nil
}

// findOpenSeats lists the occupied seats of a flight (the client derives the
// open ones).
func (b *Benchmark) findOpenSeats(conn *dbdriver.Conn, rng *rand.Rand) error {
	f := rng.Int63n(b.flights)
	if _, err := conn.QueryRow("SELECT f_seats_left, f_base_price FROM flight WHERE f_id = ?", f); err != nil {
		return err
	}
	_, err := conn.Query("SELECT r_seat FROM reservation WHERE r_f_id = ?", f)
	return err
}

// newReservation books a random free seat on a flight.
func (b *Benchmark) newReservation(conn *dbdriver.Conn, rng *rand.Rand) error {
	f := rng.Int63n(b.flights)
	c := rng.Int63n(b.customers)
	seat := 1 + rng.Intn(seatsPerPlane)

	frow, err := conn.QueryRow("SELECT f_seats_left, f_base_price FROM flight WHERE f_id = ? FOR UPDATE", f)
	if err != nil || frow == nil {
		return firstErr(err, fmt.Errorf("seats: flight %d missing", f))
	}
	if frow[0].Int() <= 0 {
		return core.ErrExpectedAbort // sold out
	}
	taken, err := conn.QueryRow("SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?", f, seat)
	if err != nil {
		return err
	}
	if taken != nil {
		return core.ErrExpectedAbort // seat already reserved
	}
	rid := b.nextResID.Add(1)
	if _, err := conn.Exec("INSERT INTO reservation VALUES (?, ?, ?, ?, ?)",
		rid, c, f, seat, frow[1].Float()*(1+rng.Float64())); err != nil {
		return fmt.Errorf("seats: race on seat: %v: %w", err, core.ErrExpectedAbort)
	}
	_, err = conn.Exec("UPDATE flight SET f_seats_left = f_seats_left - 1 WHERE f_id = ?", f)
	return err
}

// updateCustomer touches a customer's attributes after reading their
// reservations.
func (b *Benchmark) updateCustomer(conn *dbdriver.Conn, rng *rand.Rand) error {
	c := rng.Int63n(b.customers)
	if _, err := conn.Query("SELECT r_id FROM reservation WHERE r_c_id = ? LIMIT 10", c); err != nil {
		return err
	}
	_, err := conn.Exec("UPDATE customer SET c_sattr0 = ?, c_iattr0 = ? WHERE c_id = ?",
		common.AString(rng, 8, 32), rng.Int63(), c)
	return err
}

// updateReservation moves an existing reservation to a different seat.
func (b *Benchmark) updateReservation(conn *dbdriver.Conn, rng *rand.Rand) error {
	f := rng.Int63n(b.flights)
	res, err := conn.Query("SELECT r_id, r_seat FROM reservation WHERE r_f_id = ? LIMIT 5 FOR UPDATE", f)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return core.ErrExpectedAbort
	}
	pick := res.Rows[rng.Intn(len(res.Rows))]
	newSeat := 1 + rng.Intn(seatsPerPlane)
	taken, err := conn.QueryRow("SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?", f, newSeat)
	if err != nil {
		return err
	}
	if taken != nil {
		return core.ErrExpectedAbort
	}
	_, err = conn.Exec("UPDATE reservation SET r_seat = ? WHERE r_id = ?", newSeat, pick[0].Int())
	return err
}

// deleteReservation cancels a reservation and refunds the customer.
func (b *Benchmark) deleteReservation(conn *dbdriver.Conn, rng *rand.Rand) error {
	f := rng.Int63n(b.flights)
	row, err := conn.QueryRow(
		"SELECT r_id, r_c_id, r_price FROM reservation WHERE r_f_id = ? LIMIT 1 FOR UPDATE", f)
	if err != nil {
		return err
	}
	if row == nil {
		return core.ErrExpectedAbort // no reservations on this flight
	}
	if _, err := conn.Exec("DELETE FROM reservation WHERE r_id = ?", row[0].Int()); err != nil {
		return err
	}
	if _, err := conn.Exec("UPDATE flight SET f_seats_left = f_seats_left + 1 WHERE f_id = ?", f); err != nil {
		return err
	}
	_, err = conn.Exec("UPDATE customer SET c_balance = c_balance + ? WHERE c_id = ?",
		row[2].Float(), row[1].Int())
	return err
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func init() {
	core.RegisterBenchmark("seats", func(scale float64) core.Benchmark { return New(scale) })
}
