// Package chbenchmark ports the CH-benCHmark (Table 1: "Mixture of OLTP and
// OLAP"): the TPC-C transactional workload running concurrently with
// TPC-H-derived analytic queries over the same (extended) schema. This port
// includes four representative members of the 22-query suite - Q1 (pricing
// summary), Q6 (revenue change), Q12 (shipping modes), Q14 (promotion
// effect) - adapted to the shared TPC-C tables exactly as CH-benCHmark does.
package chbenchmark

import (
	"math/rand"
	"time"

	"benchpress/internal/benchmarks/tpcc"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Benchmark layers analytic queries over an embedded TPC-C instance.
type Benchmark struct {
	*tpcc.Benchmark
}

// New builds the benchmark at a scale factor (TPC-C semantics).
func New(scale float64) *Benchmark {
	return &Benchmark{Benchmark: tpcc.New(scale)}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "chbenchmark" }

// DefaultMix implements core.Benchmark: the TPC-C mixture with a trickle of
// analytics, CH-benCHmark's standard hybrid setup.
func (b *Benchmark) DefaultMix() []float64 {
	// NewOrder, Payment, OrderStatus, Delivery, StockLevel, Q1, Q3, Q6, Q12, Q14
	return []float64{43, 41, 4, 4, 3, 1, 1, 1, 1, 1}
}

// AnalyticsOnlyMix runs only the OLAP side (used in ablation benches).
func (b *Benchmark) AnalyticsOnlyMix() []float64 {
	return []float64{0, 0, 0, 0, 0, 20, 20, 20, 20, 20}
}

// Procedures implements core.Benchmark: the five TPC-C transactions plus the
// analytic queries.
func (b *Benchmark) Procedures() []core.Procedure {
	procs := b.Benchmark.Procedures()
	return append(procs,
		core.Procedure{Name: "Q1", ReadOnly: true, Fn: b.q1},
		core.Procedure{Name: "Q3", ReadOnly: true, Fn: b.q3},
		core.Procedure{Name: "Q6", ReadOnly: true, Fn: b.q6},
		core.Procedure{Name: "Q12", ReadOnly: true, Fn: b.q12},
		core.Procedure{Name: "Q14", ReadOnly: true, Fn: b.q14},
	)
}

// q3 is CH-benCHmark Q3: unshipped orders of a customer-state segment with
// their accumulated revenue (a four-way join over customer, new_order,
// oorder, and order_line).
func (b *Benchmark) q3(conn *dbdriver.Conn, rng *rand.Rand) error {
	state := string(rune('A' + rng.Intn(26)))
	_, err := conn.Query(`SELECT o.o_id, o.o_w_id, o.o_d_id, SUM(ol.ol_amount) AS revenue
		FROM customer c
		JOIN oorder o ON o.o_w_id = c.c_w_id AND o.o_d_id = c.c_d_id AND o.o_c_id = c.c_id
		JOIN new_order no ON no.no_w_id = o.o_w_id AND no.no_d_id = o.o_d_id AND no.no_o_id = o.o_id
		JOIN order_line ol ON ol.ol_w_id = o.o_w_id AND ol.ol_d_id = o.o_d_id AND ol.ol_o_id = o.o_id
		WHERE c.c_state LIKE ?
		GROUP BY o.o_id, o.o_w_id, o.o_d_id
		ORDER BY revenue DESC
		LIMIT 10`, state+"%")
	return err
}

// cutoff returns a random delivery-date cutoff within the loaded data range.
func cutoff(rng *rand.Rand) time.Time {
	epoch := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC)
	return epoch.Add(-time.Duration(rng.Int63n(int64(300 * 24 * time.Hour))))
}

// q1 is CH-benCHmark Q1: order-line pricing summary grouped by line number.
func (b *Benchmark) q1(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Query(`SELECT ol_number,
			SUM(ol_quantity) AS sum_qty,
			SUM(ol_amount) AS sum_amount,
			AVG(ol_quantity) AS avg_qty,
			AVG(ol_amount) AS avg_amount,
			COUNT(*) AS count_order
		FROM order_line
		WHERE ol_delivery_d > ?
		GROUP BY ol_number
		ORDER BY ol_number`, cutoff(rng))
	return err
}

// q6 is CH-benCHmark Q6: revenue from qualifying order lines.
func (b *Benchmark) q6(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow(`SELECT SUM(ol_amount) AS revenue
		FROM order_line
		WHERE ol_delivery_d >= ? AND ol_quantity BETWEEN 1 AND 100000`, cutoff(rng))
	return err
}

// q12 is CH-benCHmark Q12: order priority counts by carrier class.
func (b *Benchmark) q12(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Query(`SELECT o.o_ol_cnt,
			SUM(CASE WHEN o.o_carrier_id = 1 OR o.o_carrier_id = 2 THEN 1 ELSE 0 END) AS high_line,
			SUM(CASE WHEN o.o_carrier_id <> 1 AND o.o_carrier_id <> 2 THEN 1 ELSE 0 END) AS low_line
		FROM oorder o JOIN order_line ol
			ON ol.ol_w_id = o.o_w_id AND ol.ol_d_id = o.o_d_id AND ol.ol_o_id = o.o_id
		WHERE o.o_entry_d <= ol.ol_delivery_d
		GROUP BY o.o_ol_cnt
		ORDER BY o.o_ol_cnt`)
	return err
}

// q14 is CH-benCHmark Q14: promotion effect over delivered lines.
func (b *Benchmark) q14(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow(`SELECT
			100 * SUM(CASE WHEN i.i_data LIKE 'pr%' THEN ol.ol_amount ELSE 0 END) / (1 + SUM(ol.ol_amount)) AS promo_revenue
		FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id
		WHERE ol.ol_delivery_d >= ?`, cutoff(rng))
	return err
}

func init() {
	core.RegisterBenchmark("chbenchmark", func(scale float64) core.Benchmark { return New(scale) })
}
