// Package tatp ports the Telecom Application Transaction Processing
// benchmark (Table 1: "Caller Location App"): seven short transactions over
// a subscriber database, 80% reads, with the standard non-uniform subscriber
// chooser.
package tatp

import (
	"fmt"
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// baseSubscribers is the subscriber count at scale 1 (TATP's unit is 100k;
// we default to 10k per scale point to keep in-memory loads quick).
const baseSubscribers = 10000

// Benchmark is the TATP workload instance.
type Benchmark struct {
	subscribers int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{subscribers: int64(common.ScaleCount(baseSubscribers, scale, 100))}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "tatp" }

// DefaultMix implements core.Benchmark (the standard TATP mixture).
func (b *Benchmark) DefaultMix() []float64 {
	// DeleteCallForwarding, GetAccessData, GetNewDestination,
	// GetSubscriberData, InsertCallForwarding, UpdateLocation,
	// UpdateSubscriberData
	return []float64{2, 35, 10, 35, 2, 14, 2}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE subscriber (
			s_id INT NOT NULL,
			sub_nbr VARCHAR(15) NOT NULL,
			bit_1 TINYINT, bit_4 TINYINT, bit_10 TINYINT,
			hex_1 TINYINT, byte2_1 SMALLINT,
			msc_location INT, vlr_location INT,
			PRIMARY KEY (s_id))`,
		"CREATE UNIQUE INDEX idx_sub_nbr ON subscriber (sub_nbr)",
		`CREATE TABLE access_info (
			s_id INT NOT NULL,
			ai_type TINYINT NOT NULL,
			data1 SMALLINT, data2 SMALLINT,
			data3 VARCHAR(3), data4 VARCHAR(5),
			PRIMARY KEY (s_id, ai_type))`,
		`CREATE TABLE special_facility (
			s_id INT NOT NULL,
			sf_type TINYINT NOT NULL,
			is_active TINYINT NOT NULL,
			error_cntrl SMALLINT,
			data_a SMALLINT,
			data_b VARCHAR(5),
			PRIMARY KEY (s_id, sf_type))`,
		`CREATE TABLE call_forwarding (
			s_id INT NOT NULL,
			sf_type TINYINT NOT NULL,
			start_time TINYINT NOT NULL,
			end_time TINYINT,
			numberx VARCHAR(15),
			PRIMARY KEY (s_id, sf_type, start_time))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// subNbr formats a subscriber number.
func subNbr(sid int64) string { return fmt.Sprintf("%015d", sid) }

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for sid := int64(1); sid <= b.subscribers; sid++ {
		if err := l.Exec(
			"INSERT INTO subscriber VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
			sid, subNbr(sid), rng.Intn(2), rng.Intn(2), rng.Intn(2),
			rng.Intn(16), rng.Intn(256), rng.Int31(), rng.Int31()); err != nil {
			return err
		}
		// 1-4 access_info rows with distinct ai_types.
		for _, ai := range common.Shuffled(rng, 4)[:1+rng.Intn(4)] {
			if err := l.Exec("INSERT INTO access_info VALUES (?, ?, ?, ?, ?, ?)",
				sid, ai+1, rng.Intn(256), rng.Intn(256),
				common.AString(rng, 3, 3), common.AString(rng, 5, 5)); err != nil {
				return err
			}
		}
		// 1-4 special_facility rows; each active one gets 0-3 call
		// forwarding records.
		for _, sf := range common.Shuffled(rng, 4)[:1+rng.Intn(4)] {
			active := 0
			if common.FlipCoin(rng, 0.85) {
				active = 1
			}
			if err := l.Exec("INSERT INTO special_facility VALUES (?, ?, ?, ?, ?, ?)",
				sid, sf+1, active, rng.Intn(256), rng.Intn(256),
				common.AString(rng, 5, 5)); err != nil {
				return err
			}
			for _, st := range common.Shuffled(rng, 3)[:rng.Intn(4)] {
				start := int64(st * 8)
				if err := l.Exec("INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
					sid, sf+1, start, start+int64(1+rng.Intn(8)),
					common.NString(rng, 15, 15)); err != nil {
					return err
				}
			}
		}
	}
	return l.Close()
}

// sid draws a subscriber with TATP's non-uniform chooser.
func (b *Benchmark) sid(rng *rand.Rand) int64 {
	a := int64(1023)
	if b.subscribers > 1000000 {
		a = 1048575
	}
	return common.NURand(rng, a, 1, b.subscribers)
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "DeleteCallForwarding", Fn: b.deleteCallForwarding},
		{Name: "GetAccessData", ReadOnly: true, Fn: b.getAccessData},
		{Name: "GetNewDestination", ReadOnly: true, Fn: b.getNewDestination},
		{Name: "GetSubscriberData", ReadOnly: true, Fn: b.getSubscriberData},
		{Name: "InsertCallForwarding", Fn: b.insertCallForwarding},
		{Name: "UpdateLocation", Fn: b.updateLocation},
		{Name: "UpdateSubscriberData", Fn: b.updateSubscriberData},
	}
}

func (b *Benchmark) getSubscriberData(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT * FROM subscriber WHERE s_id = ?", b.sid(rng))
	return err
}

func (b *Benchmark) getAccessData(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow(
		"SELECT data1, data2, data3, data4 FROM access_info WHERE s_id = ? AND ai_type = ?",
		b.sid(rng), 1+rng.Intn(4))
	return err
}

func (b *Benchmark) getNewDestination(conn *dbdriver.Conn, rng *rand.Rand) error {
	sid := b.sid(rng)
	sfType := 1 + rng.Intn(4)
	start := int64(8 * rng.Intn(3))
	end := start + 1 + rng.Int63n(8)
	_, err := conn.Query(`SELECT cf.numberx
		FROM special_facility sf, call_forwarding cf
		WHERE sf.s_id = ? AND sf.sf_type = ? AND sf.is_active = 1
		  AND cf.s_id = sf.s_id AND cf.sf_type = sf.sf_type
		  AND cf.start_time <= ? AND cf.end_time > ?`,
		sid, sfType, start, end)
	return err
}

func (b *Benchmark) updateSubscriberData(conn *dbdriver.Conn, rng *rand.Rand) error {
	sid := b.sid(rng)
	res, err := conn.Exec("UPDATE subscriber SET bit_1 = ? WHERE s_id = ?", rng.Intn(2), sid)
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return core.ErrExpectedAbort
	}
	_, err = conn.Exec("UPDATE special_facility SET data_a = ? WHERE s_id = ? AND sf_type = ?",
		rng.Intn(256), sid, 1+rng.Intn(4))
	return err
}

func (b *Benchmark) updateLocation(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE subscriber SET vlr_location = ? WHERE sub_nbr = ?",
		rng.Int31(), subNbr(b.sid(rng)))
	return err
}

func (b *Benchmark) insertCallForwarding(conn *dbdriver.Conn, rng *rand.Rand) error {
	sid := b.sid(rng)
	row, err := conn.QueryRow("SELECT s_id FROM subscriber WHERE sub_nbr = ?", subNbr(sid))
	if err != nil {
		return err
	}
	if row == nil {
		return core.ErrExpectedAbort
	}
	if _, err := conn.Query("SELECT sf_type FROM special_facility WHERE s_id = ?", sid); err != nil {
		return err
	}
	start := int64(8 * rng.Intn(3))
	_, err = conn.Exec("INSERT INTO call_forwarding VALUES (?, ?, ?, ?, ?)",
		sid, 1+rng.Intn(4), start, start+1+rng.Int63n(8), common.NString(rng, 15, 15))
	if err != nil {
		// Duplicate (s_id, sf_type, start_time) is an expected TATP abort.
		return fmt.Errorf("tatp: %v: %w", err, core.ErrExpectedAbort)
	}
	return nil
}

func (b *Benchmark) deleteCallForwarding(conn *dbdriver.Conn, rng *rand.Rand) error {
	sid := b.sid(rng)
	res, err := conn.Exec("DELETE FROM call_forwarding WHERE s_id = ? AND sf_type = ? AND start_time = ?",
		sid, 1+rng.Intn(4), 8*rng.Intn(3))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return core.ErrExpectedAbort
	}
	return nil
}

func init() {
	core.RegisterBenchmark("tatp", func(scale float64) core.Benchmark { return New(scale) })
}
