// Package smallbank ports the SmallBank benchmark (Table 1: "Banking
// System"): six short transactions over checking and savings accounts, with
// a hot-spot access pattern that stresses row-level contention.
package smallbank

import (
	"fmt"
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// baseAccounts is the account count at scale 1.
const baseAccounts = 10000

// hotspotFraction of accesses go to the first hotspotSize accounts.
const (
	hotspotFraction = 0.25
	hotspotSize     = 100
)

// initialBalance seeds both balances per account.
const initialBalance = 10000

// Benchmark is the SmallBank workload instance.
type Benchmark struct {
	accounts int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{accounts: int64(common.ScaleCount(baseAccounts, scale, 100))}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "smallbank" }

// DefaultMix implements core.Benchmark (OLTP-Bench's default: uniform over
// the six transactions except SendPayment double-weighted).
func (b *Benchmark) DefaultMix() []float64 {
	// Amalgamate, Balance, DepositChecking, SendPayment, TransactSavings, WriteCheck
	return []float64{15, 15, 15, 25, 15, 15}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE accounts (
			custid BIGINT NOT NULL,
			name VARCHAR(64) NOT NULL,
			PRIMARY KEY (custid))`,
		`CREATE TABLE savings (
			custid BIGINT NOT NULL,
			bal DOUBLE NOT NULL,
			PRIMARY KEY (custid))`,
		`CREATE TABLE checking (
			custid BIGINT NOT NULL,
			bal DOUBLE NOT NULL,
			PRIMARY KEY (custid))`,
		"CREATE INDEX idx_accounts_name ON accounts (name)",
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for id := int64(0); id < b.accounts; id++ {
		name := fmt.Sprintf("customer%08d", id)
		if err := l.Exec("INSERT INTO accounts VALUES (?, ?)", id, name); err != nil {
			return err
		}
		if err := l.Exec("INSERT INTO savings VALUES (?, ?)", id, float64(initialBalance)); err != nil {
			return err
		}
		if err := l.Exec("INSERT INTO checking VALUES (?, ?)", id, float64(initialBalance)); err != nil {
			return err
		}
	}
	return l.Close()
}

// customer draws an account id with the benchmark's hot-spot skew.
func (b *Benchmark) customer(rng *rand.Rand) int64 {
	if common.FlipCoin(rng, hotspotFraction) && b.accounts > hotspotSize {
		return rng.Int63n(hotspotSize)
	}
	return rng.Int63n(b.accounts)
}

// twoCustomers draws two distinct accounts.
func (b *Benchmark) twoCustomers(rng *rand.Rand) (int64, int64) {
	a := b.customer(rng)
	c := b.customer(rng)
	for c == a {
		c = b.customer(rng)
	}
	return a, c
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "Amalgamate", Fn: b.amalgamate},
		{Name: "Balance", ReadOnly: true, Fn: b.balance},
		{Name: "DepositChecking", Fn: b.depositChecking},
		{Name: "SendPayment", Fn: b.sendPayment},
		{Name: "TransactSavings", Fn: b.transactSavings},
		{Name: "WriteCheck", Fn: b.writeCheck},
	}
}

// amalgamate moves all funds of customer A into customer B's checking.
func (b *Benchmark) amalgamate(conn *dbdriver.Conn, rng *rand.Rand) error {
	a, c := b.twoCustomers(rng)
	sav, err := conn.QueryRow("SELECT bal FROM savings WHERE custid = ? FOR UPDATE", a)
	if err != nil || sav == nil {
		return orMissing(err, "savings")
	}
	chk, err := conn.QueryRow("SELECT bal FROM checking WHERE custid = ? FOR UPDATE", a)
	if err != nil || chk == nil {
		return orMissing(err, "checking")
	}
	total := sav[0].Float() + chk[0].Float()
	if _, err := conn.Exec("UPDATE savings SET bal = 0 WHERE custid = ?", a); err != nil {
		return err
	}
	if _, err := conn.Exec("UPDATE checking SET bal = 0 WHERE custid = ?", a); err != nil {
		return err
	}
	_, err = conn.Exec("UPDATE checking SET bal = bal + ? WHERE custid = ?", total, c)
	return err
}

// balance reads a customer's total balance.
func (b *Benchmark) balance(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.customer(rng)
	_, err := conn.QueryRow(`SELECT s.bal + c.bal FROM savings s, checking c
		WHERE s.custid = ? AND c.custid = ?`, id, id)
	return err
}

// depositChecking adds to a checking balance.
func (b *Benchmark) depositChecking(conn *dbdriver.Conn, rng *rand.Rand) error {
	amount := 1 + rng.Float64()*100
	_, err := conn.Exec("UPDATE checking SET bal = bal + ? WHERE custid = ?", amount, b.customer(rng))
	return err
}

// sendPayment transfers between two checking accounts, aborting on
// insufficient funds.
func (b *Benchmark) sendPayment(conn *dbdriver.Conn, rng *rand.Rand) error {
	from, to := b.twoCustomers(rng)
	amount := 1 + rng.Float64()*100
	row, err := conn.QueryRow("SELECT bal FROM checking WHERE custid = ? FOR UPDATE", from)
	if err != nil || row == nil {
		return orMissing(err, "checking")
	}
	if row[0].Float() < amount {
		return core.ErrExpectedAbort
	}
	if _, err := conn.Exec("UPDATE checking SET bal = bal - ? WHERE custid = ?", amount, from); err != nil {
		return err
	}
	_, err = conn.Exec("UPDATE checking SET bal = bal + ? WHERE custid = ?", amount, to)
	return err
}

// transactSavings adjusts a savings balance, aborting if it would go
// negative.
func (b *Benchmark) transactSavings(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.customer(rng)
	amount := rng.Float64()*200 - 100
	row, err := conn.QueryRow("SELECT bal FROM savings WHERE custid = ? FOR UPDATE", id)
	if err != nil || row == nil {
		return orMissing(err, "savings")
	}
	if row[0].Float()+amount < 0 {
		return core.ErrExpectedAbort
	}
	_, err = conn.Exec("UPDATE savings SET bal = bal + ? WHERE custid = ?", amount, id)
	return err
}

// writeCheck cashes a check against total funds, charging an overdraft
// penalty when insufficient.
func (b *Benchmark) writeCheck(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.customer(rng)
	amount := 1 + rng.Float64()*100
	row, err := conn.QueryRow(`SELECT s.bal + c.bal FROM savings s, checking c
		WHERE s.custid = ? AND c.custid = ?`, id, id)
	if err != nil || row == nil {
		return orMissing(err, "funds")
	}
	if row[0].Float() < amount {
		amount += 1 // overdraft penalty
	}
	_, err = conn.Exec("UPDATE checking SET bal = bal - ? WHERE custid = ?", amount, id)
	return err
}

// orMissing normalizes a missing-row read into an expected abort.
func orMissing(err error, what string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("smallbank: missing %s row: %w", what, core.ErrExpectedAbort)
}

func init() {
	core.RegisterBenchmark("smallbank", func(scale float64) core.Benchmark { return New(scale) })
}
