package voter

import (
	"errors"
	"math/rand"
	"testing"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// openLoaded prepares a tiny Voter database on the MVCC engine.
func openLoaded(t *testing.T) (*Benchmark, *dbdriver.DB) {
	t.Helper()
	b := New(0.02)
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := core.Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	return b, db
}

func TestSchemaLoadCounts(t *testing.T) {
	b, db := openLoaded(t)
	conn := db.Connect()
	defer func() { _ = conn.Close() }()

	row, err := conn.QueryRow("SELECT COUNT(*) FROM contestants")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(row[0].Int()); got != b.contestants {
		t.Errorf("contestants = %d, want %d", got, b.contestants)
	}
	row, err = conn.QueryRow("SELECT COUNT(*) FROM area_code_state")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(row[0].Int()); got != len(areaCodes) {
		t.Errorf("area codes = %d, want %d", got, len(areaCodes))
	}
	row, err = conn.QueryRow("SELECT COUNT(*) FROM votes")
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Int() != 0 {
		t.Errorf("votes loaded non-empty: %d", row[0].Int())
	}
}

// TestVoteRoundTrip drives the Vote transaction by hand — Begin, procedure,
// Commit — and checks the vote landed with a state resolved from the area
// code table.
func TestVoteRoundTrip(t *testing.T) {
	b, db := openLoaded(t)
	conn := db.Connect()
	defer func() { _ = conn.Close() }()
	rng := rand.New(rand.NewSource(7))

	const rounds = 25
	committed := 0
	for i := 0; i < rounds; i++ {
		if err := conn.Begin(); err != nil {
			t.Fatal(err)
		}
		err := b.vote(conn, rng)
		if errors.Is(err, core.ErrExpectedAbort) {
			if rbErr := conn.Rollback(); rbErr != nil {
				t.Fatal(rbErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if err := conn.Commit(); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	if committed == 0 {
		t.Fatal("no vote committed in any round")
	}

	row, err := conn.QueryRow("SELECT COUNT(*) FROM votes")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(row[0].Int()); got != committed {
		t.Errorf("votes = %d, want %d", got, committed)
	}
	// Every vote's contestant must exist and its state must be two letters.
	res, err := conn.Query("SELECT contestant_number, state FROM votes")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if n := int(r[0].Int()); n < 1 || n > b.contestants {
			t.Errorf("vote for unknown contestant %d", n)
		}
		if s := r[1].Str(); len(s) != 2 {
			t.Errorf("vote with malformed state %q", s)
		}
	}
}
