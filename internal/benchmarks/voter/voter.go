// Package voter ports the Voter benchmark (Table 1: "Talent Show Voting"):
// a stream of phone-in votes for contestants with a per-phone vote cap,
// modeled on the Japanese "American Idol" VoltDB demo that OLTP-Bench adopts.
package voter

import (
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// contestantNames are the fixed contestants (OLTP-Bench loads 6-12).
var contestantNames = []string{
	"Edwina Burnam", "Tabatha Gehling", "Kelly Clauss", "Jessie Alloway",
	"Alana Bregman", "Jessie Eichman", "Allie Rogalski", "Nita Coster",
	"Kurt Walser", "Ericka Dieter", "Loraine Nygren", "Tania Mattioli",
}

// areaCodes is a sample of US area codes with their states.
var areaCodes = []struct {
	code  int
	state string
}{
	{212, "NY"}, {310, "CA"}, {412, "PA"}, {415, "CA"}, {512, "TX"},
	{617, "MA"}, {702, "NV"}, {808, "HI"}, {206, "WA"}, {305, "FL"},
}

// maxVotesPerPhone caps votes per phone number.
const maxVotesPerPhone = 10

// basePhones is the phone-number space at scale 1.
const basePhones = 100000

// Benchmark is the Voter workload instance.
type Benchmark struct {
	contestants int
	phones      int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{
		contestants: len(contestantNames),
		phones:      int64(common.ScaleCount(basePhones, scale, 1000)),
	}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "voter" }

// DefaultMix implements core.Benchmark: Voter is a single-transaction
// workload.
func (b *Benchmark) DefaultMix() []float64 { return []float64{100} }

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE contestants (
			contestant_number INT NOT NULL,
			contestant_name VARCHAR(50) NOT NULL,
			PRIMARY KEY (contestant_number))`,
		`CREATE TABLE area_code_state (
			area_code INT NOT NULL,
			state VARCHAR(2) NOT NULL,
			PRIMARY KEY (area_code))`,
		`CREATE TABLE votes (
			vote_id BIGINT NOT NULL AUTO_INCREMENT,
			phone_number BIGINT NOT NULL,
			state VARCHAR(2) NOT NULL,
			contestant_number INT NOT NULL,
			created TIMESTAMP NOT NULL,
			PRIMARY KEY (vote_id))`,
		"CREATE INDEX idx_votes_phone ON votes (phone_number)",
		"CREATE INDEX idx_votes_contestant ON votes (contestant_number)",
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 500)
	if err != nil {
		return err
	}
	for i, name := range contestantNames[:b.contestants] {
		if err := l.Exec("INSERT INTO contestants VALUES (?, ?)", i+1, name); err != nil {
			return err
		}
	}
	for _, ac := range areaCodes {
		if err := l.Exec("INSERT INTO area_code_state VALUES (?, ?)", ac.code, ac.state); err != nil {
			return err
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{{Name: "Vote", Fn: b.vote}}
}

// vote is the single Voter transaction: validate contestant, enforce the
// per-phone vote cap, resolve the caller's state, insert the vote.
func (b *Benchmark) vote(conn *dbdriver.Conn, rng *rand.Rand) error {
	contestant := 1 + rng.Intn(b.contestants)
	ac := areaCodes[rng.Intn(len(areaCodes))]
	phone := int64(ac.code)*10_000_000 + rng.Int63n(b.phones)

	// Contestant must exist.
	row, err := conn.QueryRow("SELECT contestant_number FROM contestants WHERE contestant_number = ?", contestant)
	if err != nil {
		return err
	}
	if row == nil {
		return core.ErrExpectedAbort
	}
	// Vote cap per phone number.
	cnt, err := conn.QueryRow("SELECT COUNT(*) FROM votes WHERE phone_number = ?", phone)
	if err != nil {
		return err
	}
	if cnt[0].Int() >= maxVotesPerPhone {
		return core.ErrExpectedAbort
	}
	// Resolve state from the area code (default XX as OLTP-Bench does).
	state := "XX"
	if srow, err := conn.QueryRow("SELECT state FROM area_code_state WHERE area_code = ?", ac.code); err != nil {
		return err
	} else if srow != nil {
		state = srow[0].Str()
	}
	_, err = conn.Exec(
		"INSERT INTO votes (phone_number, state, contestant_number, created) VALUES (?, ?, ?, NOW())",
		phone, state, contestant)
	return err
}

func init() {
	core.RegisterBenchmark("voter", func(scale float64) core.Benchmark { return New(scale) })
}
