// Package resourcestresser ports the ResourceStresser benchmark (Table 1:
// "Isolated Resource Stresser"): synthetic transactions that each saturate
// one resource class - CPU (hash computation inside the transaction), IO
// (wide scattered updates), and lock contention (hot-row increments) - so a
// player can probe exactly which resource limits a target engine.
package resourcestresser

import (
	"crypto/sha256"
	"fmt"
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseCPURows  = 1000
	baseIORows   = 5000
	lockRows     = 10 // deliberately tiny: the contention target
	ioUpdateSize = 20
)

// Benchmark is the ResourceStresser workload instance.
type Benchmark struct {
	cpuRows, ioRows int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{
		cpuRows: int64(common.ScaleCount(baseCPURows, scale, 100)),
		ioRows:  int64(common.ScaleCount(baseIORows, scale, 200)),
	}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "resourcestresser" }

// DefaultMix implements core.Benchmark.
func (b *Benchmark) DefaultMix() []float64 {
	// CPU1, CPU2, IO1, IO2, Contention1, Contention2
	return []float64{17, 17, 17, 17, 16, 16}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE cputable (
			empid INT NOT NULL,
			passwd VARCHAR(64) NOT NULL,
			salt VARCHAR(32) NOT NULL,
			PRIMARY KEY (empid))`,
		`CREATE TABLE iotable (
			empid INT NOT NULL,
			data1 VARCHAR(64), data2 VARCHAR(64), data3 VARCHAR(64), data4 VARCHAR(64),
			flag1 INT,
			PRIMARY KEY (empid))`,
		"CREATE INDEX idx_iotable_flag ON iotable (flag1)",
		`CREATE TABLE locktable (
			empid INT NOT NULL,
			salary INT NOT NULL,
			PRIMARY KEY (empid))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for i := int64(0); i < b.cpuRows; i++ {
		if err := l.Exec("INSERT INTO cputable VALUES (?, ?, ?)",
			i, common.AString(rng, 32, 64), common.AString(rng, 16, 32)); err != nil {
			return err
		}
	}
	for i := int64(0); i < b.ioRows; i++ {
		if err := l.Exec("INSERT INTO iotable VALUES (?, ?, ?, ?, ?, ?)",
			i, common.AString(rng, 32, 64), common.AString(rng, 32, 64),
			common.AString(rng, 32, 64), common.AString(rng, 32, 64), int(i%100)); err != nil {
			return err
		}
	}
	for i := 0; i < lockRows; i++ {
		if err := l.Exec("INSERT INTO locktable VALUES (?, ?)", i, 1000); err != nil {
			return err
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "CPU1", ReadOnly: true, Fn: b.cpu(5)},
		{Name: "CPU2", ReadOnly: true, Fn: b.cpu(25)},
		{Name: "IO1", Fn: b.io1},
		{Name: "IO2", Fn: b.io2},
		{Name: "Contention1", Fn: b.contention1},
		{Name: "Contention2", Fn: b.contention2},
	}
}

// cpu reads a password row and hashes it repeatedly inside the transaction,
// burning client/server CPU proportional to rounds.
func (b *Benchmark) cpu(rounds int) func(*dbdriver.Conn, *rand.Rand) error {
	return func(conn *dbdriver.Conn, rng *rand.Rand) error {
		row, err := conn.QueryRow("SELECT passwd, salt FROM cputable WHERE empid = ?",
			rng.Int63n(b.cpuRows))
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		sum := []byte(row[0].Str() + row[1].Str())
		for i := 0; i < rounds; i++ {
			h := sha256.Sum256(sum)
			sum = h[:]
		}
		if len(sum) == 0 {
			return fmt.Errorf("resourcestresser: impossible empty digest")
		}
		return nil
	}
}

// io1 updates a contiguous run of wide rows (sequential write pressure).
func (b *Benchmark) io1(conn *dbdriver.Conn, rng *rand.Rand) error {
	start := rng.Int63n(b.ioRows - ioUpdateSize)
	_, err := conn.Exec("UPDATE iotable SET data1 = ?, data2 = ? WHERE empid >= ? AND empid < ?",
		common.AString(rng, 32, 64), common.AString(rng, 32, 64), start, start+ioUpdateSize)
	return err
}

// io2 updates a scattered flag class (random write pressure via secondary
// index).
func (b *Benchmark) io2(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE iotable SET data3 = ?, flag1 = ? WHERE flag1 = ?",
		common.AString(rng, 32, 64), rng.Intn(100), rng.Intn(100))
	return err
}

// contention1 increments one hot row.
func (b *Benchmark) contention1(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE locktable SET salary = salary + 1 WHERE empid = ?",
		rng.Intn(lockRows))
	return err
}

// contention2 transfers between two hot rows (classic deadlock bait under
// 2PL when lock order differs).
func (b *Benchmark) contention2(conn *dbdriver.Conn, rng *rand.Rand) error {
	a := rng.Intn(lockRows)
	c := rng.Intn(lockRows)
	for c == a {
		c = rng.Intn(lockRows)
	}
	if _, err := conn.Exec("UPDATE locktable SET salary = salary - 1 WHERE empid = ?", a); err != nil {
		return err
	}
	_, err := conn.Exec("UPDATE locktable SET salary = salary + 1 WHERE empid = ?", c)
	return err
}

func init() {
	core.RegisterBenchmark("resourcestresser", func(scale float64) core.Benchmark { return New(scale) })
}
