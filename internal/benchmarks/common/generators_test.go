package common

import (
	"math/rand"
	"testing"
	"testing/quick"

	"benchpress/internal/dbdriver"
)

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(a, b int16) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := Uniform(rng, lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if Uniform(rng, 5, 5) != 5 {
		t.Fatal("degenerate range")
	}
}

func TestNURandBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := NURand(rng, 8191, 1, 100000)
		if v < 1 || v > 100000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
	// The bitwise-OR construction concentrates probability on values whose
	// low bits are set (e.g. the all-ones byte pattern): the most frequent
	// single value must far exceed the uniform expectation.
	counts := make(map[int64]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[NURand(rng, 255, 0, 999)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformExpect := draws / 1000
	if max < 5*uniformExpect {
		t.Fatalf("NURand looks uniform: hottest value seen %d times (uniform ~%d)", max, uniformExpect)
	}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(1371) != LastName(371) {
		t.Fatal("LastName must wrap at 1000")
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
}

func TestStringGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		s := AString(rng, 5, 10)
		if len(s) < 5 || len(s) > 10 {
			t.Fatalf("AString length %d", len(s))
		}
		n := NString(rng, 4, 4)
		if len(n) != 4 {
			t.Fatalf("NString length %d", len(n))
		}
		for _, c := range n {
			if c < '0' || c > '9' {
				t.Fatalf("NString non-digit %q", n)
			}
		}
	}
	if txt := Text(rng, 20); len(txt) == 0 {
		t.Fatal("empty text")
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipfian(1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Key 0 must be the clear hot spot.
	if counts[0] < counts[500]*10 {
		t.Fatalf("zipf not skewed: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewScrambledZipfian(1000)
	counts := make(map[int64]int)
	for i := 0; i < 50000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("scrambled zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Scrambling must move the hot spot away from key 0 (with high
	// probability) while keeping skew: some key should dominate.
	var hot int64
	for k, c := range counts {
		if c > counts[hot] {
			hot = k
		}
	}
	if counts[hot] < 5000 {
		t.Fatalf("no hot key after scrambling: max=%d", counts[hot])
	}
}

func TestLatestBiasesToRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLatest(10000)
	recent, old := 0, 0
	for i := 0; i < 10000; i++ {
		v := l.Next(rng, 10000)
		if v < 0 || v >= 10000 {
			t.Fatalf("latest out of range: %d", v)
		}
		if v >= 9000 {
			recent++
		} else if v < 1000 {
			old++
		}
	}
	if recent < old*5 {
		t.Fatalf("latest not biased: recent=%d old=%d", recent, old)
	}
}

func TestScaleCount(t *testing.T) {
	if ScaleCount(1000, 0.5, 10) != 500 {
		t.Fatal("scale")
	}
	if ScaleCount(1000, 0.001, 10) != 10 {
		t.Fatal("floor")
	}
}

func TestLoaderBatches(t *testing.T) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c := db.Connect()
	if _, err := c.Exec("CREATE TABLE x (a INT NOT NULL, PRIMARY KEY (a))"); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := l.Exec("INSERT INTO x (a) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Rows() != 35 {
		t.Fatalf("rows = %d", l.Rows())
	}
	cnt, _ := c.QueryRow("SELECT COUNT(*) FROM x")
	if cnt[0].Int() != 35 {
		t.Fatalf("count = %v", cnt)
	}
}
