package common

import (
	"errors"
	"fmt"

	"benchpress/internal/dbdriver"
)

// Loader batches data-generation inserts into larger transactions so that
// benchmark loading does not pay one commit (and one WAL sync) per row.
type Loader struct {
	conn  *dbdriver.Conn
	batch int
	n     int
}

// NewLoader opens a loading connection with the given batch size (rows per
// commit; default 1000).
func NewLoader(db *dbdriver.DB, batch int) (*Loader, error) {
	if batch <= 0 {
		batch = 1000
	}
	l := &Loader{conn: db.Connect(), batch: batch}
	if err := l.conn.Begin(); err != nil {
		return nil, err
	}
	return l, nil
}

// Exec runs one insert (or other DML) within the current batch transaction.
// A statement error aborts and restarts the batch transaction (losing the
// batch's earlier rows), so loaders must treat any error as fatal rather
// than skip-and-continue.
func (l *Loader) Exec(sql string, args ...any) error {
	if _, err := l.conn.Exec(sql, args...); err != nil {
		// Restart the batch transaction so the loader stays usable for
		// error-path cleanup; restart failures ride along in the result.
		rbErr := l.conn.Rollback()
		beginErr := l.conn.Begin()
		return errors.Join(fmt.Errorf("loader: %w", err), rbErr, beginErr)
	}
	l.n++
	if l.n%l.batch == 0 {
		if err := l.conn.Commit(); err != nil {
			return fmt.Errorf("loader: commit: %w", err)
		}
		if err := l.conn.Begin(); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of statements executed.
func (l *Loader) Rows() int { return l.n }

// Close commits the final batch and releases the connection.
func (l *Loader) Close() error {
	var err error
	if l.conn.InTxn() {
		err = l.conn.Commit()
	}
	if cerr := l.conn.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("loader: close: %w", cerr)
	}
	return err
}
