// Package common provides the random-distribution and data-generation
// utilities shared by the benchmark ports: Zipfian and scrambled-Zipfian key
// choosers (YCSB), TPC-C's NURand and last-name generator, latest-biased
// choosers, and text/string generators for the web workloads.
package common

import (
	"math"
	"math/rand"
	"strings"
	"time"
)

// Uniform returns an int64 uniformly in [lo, hi] inclusive.
func Uniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// FlipCoin returns true with the given probability.
func FlipCoin(rng *rand.Rand, prob float64) bool { return rng.Float64() < prob }

// NURand implements TPC-C's non-uniform random function NURand(A, x, y)
// with a fixed C constant, biasing toward hot values.
func NURand(rng *rand.Rand, a, x, y int64) int64 {
	c := cConstant(a)
	return (((Uniform(rng, 0, a) | Uniform(rng, x, y)) + c) % (y - x + 1)) + x
}

// cConstant returns the per-A run constant for NURand.
func cConstant(a int64) int64 {
	switch a {
	case 255:
		return 87
	case 1023:
		return 101
	case 8191:
		return 1009
	default:
		return 42
	}
}

// cLastSyllables are TPC-C's last-name syllables.
var cLastSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds TPC-C's synthetic last name for a number in [0, 999].
func LastName(num int64) string {
	num %= 1000
	var b strings.Builder
	b.WriteString(cLastSyllables[num/100])
	b.WriteString(cLastSyllables[(num/10)%10])
	b.WriteString(cLastSyllables[num%10])
	return b.String()
}

// RandomLastName picks a last name with TPC-C's NURand(255) distribution.
func RandomLastName(rng *rand.Rand) string { return LastName(NURand(rng, 255, 0, 999)) }

const alphanum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
const letters = "abcdefghijklmnopqrstuvwxyz"
const digits = "0123456789"

// AString returns a random alphanumeric string with length in [lo, hi].
func AString(rng *rand.Rand, lo, hi int) string {
	return randString(rng, lo, hi, alphanum)
}

// NString returns a random numeric string with length in [lo, hi].
func NString(rng *rand.Rand, lo, hi int) string {
	return randString(rng, lo, hi, digits)
}

// LString returns a random lowercase string with length in [lo, hi].
func LString(rng *rand.Rand, lo, hi int) string {
	return randString(rng, lo, hi, letters)
}

func randString(rng *rand.Rand, lo, hi int, alphabet string) string {
	n := lo
	if hi > lo {
		n = lo + rng.Intn(hi-lo+1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// words is a small lexicon for generating plausible document text.
var words = []string{
	"the", "database", "transaction", "workload", "benchmark", "throughput",
	"latency", "index", "query", "commit", "abort", "snapshot", "lock",
	"row", "table", "page", "buffer", "log", "replica", "shard", "tenant",
	"rate", "mixture", "phase", "driver", "client", "server", "system",
}

// Text generates n words of filler text.
func Text(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[rng.Intn(len(words))])
	}
	return b.String()
}

// RandomDate returns a time uniformly within the past year (relative to a
// fixed epoch so that loads are reproducible given a seeded rng).
func RandomDate(rng *rand.Rand) time.Time {
	epoch := time.Date(2015, 5, 31, 0, 0, 0, 0, time.UTC) // SIGMOD'15
	return epoch.Add(-time.Duration(rng.Int63n(int64(365 * 24 * time.Hour))))
}

// Shuffled returns a shuffled permutation of [0, n).
func Shuffled(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

// Zipfian generates Zipf-distributed values in [0, n) with the standard
// YCSB incremental algorithm (Gray et al.), theta defaulting to 0.99.
type Zipfian struct {
	n            int64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
}

// NewZipfian builds a Zipfian generator over [0, n).
func NewZipfian(n int64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next Zipf value in [0, n), skewed toward 0.
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads Zipfian hot spots across the key space with a
// hash, as YCSB does, so hot keys are not clustered.
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian builds a scrambled Zipfian over [0, n).
func NewScrambledZipfian(n int64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, 0.99), n: n}
}

// Next draws the next scrambled value in [0, n).
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	v := s.z.Next(rng)
	return int64(fnvHash64(uint64(v)) % uint64(s.n))
}

// fnvHash64 is the FNV-1a hash of an integer's bytes.
func fnvHash64(v uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Latest draws keys biased toward the most recently inserted (largest)
// values, as YCSB's latest distribution.
type Latest struct {
	z *Zipfian
}

// NewLatest builds a latest-biased chooser over [0, n).
func NewLatest(n int64) *Latest {
	return &Latest{z: NewZipfian(n, 0.99)}
}

// Next draws a key in [0, max) biased toward max-1.
func (l *Latest) Next(rng *rand.Rand, max int64) int64 {
	if max < 1 {
		return 0
	}
	v := l.z.Next(rng)
	if v >= max {
		v = v % max
	}
	return max - 1 - v
}

// ScaleCount applies a scale factor to a base cardinality with a floor.
func ScaleCount(base int, scale float64, floor int) int {
	n := int(float64(base) * scale)
	if n < floor {
		n = floor
	}
	return n
}
