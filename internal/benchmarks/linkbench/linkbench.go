// Package linkbench ports Facebook's LinkBench (Table 1: "Social
// Networking"): a social-graph store of nodes and typed directed links with
// maintained link counts, exercised by the production-derived operation mix.
package linkbench

import (
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Cardinalities at scale 1.
const (
	baseNodes    = 5000
	linksPerNode = 5
	linkType     = 123
)

// Benchmark is the LinkBench workload instance.
type Benchmark struct {
	nodes    int64
	nextNode atomic.Int64
	idChoose *common.ScrambledZipfian
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	n := int64(common.ScaleCount(baseNodes, scale, 200))
	b := &Benchmark{nodes: n, idChoose: common.NewScrambledZipfian(n)}
	b.nextNode.Store(n)
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "linkbench" }

// DefaultMix implements core.Benchmark (approximating the Facebook
// production mix: link reads dominate).
func (b *Benchmark) DefaultMix() []float64 {
	// AddLink, DeleteLink, UpdateLink, CountLink, GetLink, GetLinkList,
	// AddNode, GetNode, UpdateNode, DeleteNode
	return []float64{9, 3, 8, 5, 12, 50, 3, 6, 3, 1}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE nodetable (
			id BIGINT NOT NULL,
			type INT NOT NULL,
			version BIGINT NOT NULL,
			time INT NOT NULL,
			data VARCHAR(255),
			PRIMARY KEY (id))`,
		`CREATE TABLE linktable (
			id1 BIGINT NOT NULL,
			link_type BIGINT NOT NULL,
			id2 BIGINT NOT NULL,
			visibility TINYINT NOT NULL,
			data VARCHAR(255),
			time BIGINT NOT NULL,
			version INT NOT NULL,
			PRIMARY KEY (id1, link_type, id2))`,
		"CREATE INDEX idx_link_time ON linktable (id1, link_type, time)",
		`CREATE TABLE counttable (
			id BIGINT NOT NULL,
			link_type BIGINT NOT NULL,
			count BIGINT NOT NULL,
			time BIGINT NOT NULL,
			version BIGINT NOT NULL,
			PRIMARY KEY (id, link_type))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for id := int64(0); id < b.nodes; id++ {
		if err := l.Exec("INSERT INTO nodetable VALUES (?, ?, 0, ?, ?)",
			id, 2048, rng.Int31(), common.AString(rng, 32, 128)); err != nil {
			return err
		}
		n := 0
		seen := map[int64]bool{id: true}
		for i := 0; i < linksPerNode; i++ {
			id2 := b.idChoose.Next(rng)
			if seen[id2] {
				continue
			}
			seen[id2] = true
			if err := l.Exec("INSERT INTO linktable VALUES (?, ?, ?, 1, ?, ?, 0)",
				id, linkType, id2, common.AString(rng, 8, 32), rng.Int63n(1<<40)); err != nil {
				return err
			}
			n++
		}
		if err := l.Exec("INSERT INTO counttable VALUES (?, ?, ?, ?, 0)",
			id, linkType, n, rng.Int63n(1<<40)); err != nil {
			return err
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "AddLink", Fn: b.addLink},
		{Name: "DeleteLink", Fn: b.deleteLink},
		{Name: "UpdateLink", Fn: b.updateLink},
		{Name: "CountLink", ReadOnly: true, Fn: b.countLink},
		{Name: "GetLink", ReadOnly: true, Fn: b.getLink},
		{Name: "GetLinkList", ReadOnly: true, Fn: b.getLinkList},
		{Name: "AddNode", Fn: b.addNode},
		{Name: "GetNode", ReadOnly: true, Fn: b.getNode},
		{Name: "UpdateNode", Fn: b.updateNode},
		{Name: "DeleteNode", Fn: b.deleteNode},
	}
}

func (b *Benchmark) pair(rng *rand.Rand) (int64, int64) {
	id1 := b.idChoose.Next(rng)
	id2 := b.idChoose.Next(rng)
	for id2 == id1 {
		id2 = b.idChoose.Next(rng)
	}
	return id1, id2
}

func (b *Benchmark) addLink(conn *dbdriver.Conn, rng *rand.Rand) error {
	id1, id2 := b.pair(rng)
	if _, err := conn.Exec("INSERT INTO linktable VALUES (?, ?, ?, 1, ?, ?, 0)",
		id1, linkType, id2, common.AString(rng, 8, 32), rng.Int63n(1<<40)); err != nil {
		// Existing link: LinkBench upserts; emulate with an update.
		_, uerr := conn.Exec(
			"UPDATE linktable SET visibility = 1, version = version + 1 WHERE id1 = ? AND link_type = ? AND id2 = ?",
			id1, linkType, id2)
		return uerr
	}
	_, err := conn.Exec(
		"UPDATE counttable SET count = count + 1, version = version + 1 WHERE id = ? AND link_type = ?",
		id1, linkType)
	return err
}

func (b *Benchmark) deleteLink(conn *dbdriver.Conn, rng *rand.Rand) error {
	id1, id2 := b.pair(rng)
	res, err := conn.Exec("DELETE FROM linktable WHERE id1 = ? AND link_type = ? AND id2 = ?",
		id1, linkType, id2)
	if err != nil {
		return err
	}
	if res.RowsAffected > 0 {
		_, err = conn.Exec(
			"UPDATE counttable SET count = count - 1, version = version + 1 WHERE id = ? AND link_type = ?",
			id1, linkType)
	}
	return err
}

func (b *Benchmark) updateLink(conn *dbdriver.Conn, rng *rand.Rand) error {
	id1, id2 := b.pair(rng)
	_, err := conn.Exec(
		"UPDATE linktable SET data = ?, version = version + 1 WHERE id1 = ? AND link_type = ? AND id2 = ?",
		common.AString(rng, 8, 32), id1, linkType, id2)
	return err
}

func (b *Benchmark) countLink(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT count FROM counttable WHERE id = ? AND link_type = ?",
		b.idChoose.Next(rng), linkType)
	return err
}

func (b *Benchmark) getLink(conn *dbdriver.Conn, rng *rand.Rand) error {
	id1, id2 := b.pair(rng)
	_, err := conn.QueryRow("SELECT * FROM linktable WHERE id1 = ? AND link_type = ? AND id2 = ?",
		id1, linkType, id2)
	return err
}

func (b *Benchmark) getLinkList(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Query(`SELECT * FROM linktable
		WHERE id1 = ? AND link_type = ? AND visibility = 1
		ORDER BY time DESC LIMIT 10`, b.idChoose.Next(rng), linkType)
	return err
}

func (b *Benchmark) addNode(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.nextNode.Add(1)
	if _, err := conn.Exec("INSERT INTO nodetable VALUES (?, ?, 0, ?, ?)",
		id, 2048, rng.Int31(), common.AString(rng, 32, 128)); err != nil {
		return err
	}
	_, err := conn.Exec("INSERT INTO counttable VALUES (?, ?, 0, ?, 0)", id, linkType, rng.Int63n(1<<40))
	return err
}

func (b *Benchmark) getNode(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT * FROM nodetable WHERE id = ?", b.idChoose.Next(rng))
	return err
}

func (b *Benchmark) updateNode(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE nodetable SET data = ?, version = version + 1 WHERE id = ?",
		common.AString(rng, 32, 128), b.idChoose.Next(rng))
	return err
}

func (b *Benchmark) deleteNode(conn *dbdriver.Conn, rng *rand.Rand) error {
	// LinkBench deletes beyond the preloaded range so that graph reads stay
	// mostly intact; deleting a random added node keeps the same spirit.
	max := b.nextNode.Load()
	if max <= b.nodes {
		return nil
	}
	id := b.nodes + rng.Int63n(max-b.nodes)
	if _, err := conn.Exec("DELETE FROM nodetable WHERE id = ?", id); err != nil {
		return err
	}
	_, err := conn.Exec("DELETE FROM counttable WHERE id = ? AND link_type = ?", id, linkType)
	return err
}

func init() {
	core.RegisterBenchmark("linkbench", func(scale float64) core.Benchmark { return New(scale) })
}
