// Package tpcc ports TPC-C (Table 1: "Order Processing"), the canonical
// OLTP benchmark: five transactions over a nine-table order-entry schema.
//
// Scale semantics: the integer part of the scale factor sets the warehouse
// count (min 1); fractional scales below 1 proportionally shrink the
// per-warehouse cardinalities (items, customers per district, initial
// orders) so that test loads stay fast while a scale of 1 loads the full
// spec-sized single warehouse.
package tpcc

import (
	"fmt"
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// Spec cardinalities at density 1.
const (
	specItems       = 100000
	specCustPerDist = 3000
	districtsPerWH  = 10
)

// Benchmark is the TPC-C workload instance.
type Benchmark struct {
	warehouses    int64
	items         int64
	custPerDist   int64
	initialOrders int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	w := int64(scale)
	if w < 1 {
		w = 1
	}
	density := scale
	if density > 1 {
		density = 1
	}
	b := &Benchmark{
		warehouses:  w,
		items:       int64(common.ScaleCount(specItems, density, 100)),
		custPerDist: int64(common.ScaleCount(specCustPerDist, density, 30)),
	}
	b.initialOrders = b.custPerDist // one initial order per customer
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "tpcc" }

// Warehouses returns the configured warehouse count.
func (b *Benchmark) Warehouses() int64 { return b.warehouses }

// DefaultMix implements core.Benchmark (the spec mixture).
func (b *Benchmark) DefaultMix() []float64 {
	// NewOrder, Payment, OrderStatus, Delivery, StockLevel
	return []float64{45, 43, 4, 4, 4}
}

// ReadOnlyMix is the game's "Read-only" preset for TPC-C.
func (b *Benchmark) ReadOnlyMix() []float64 { return []float64{0, 0, 50, 0, 50} }

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE warehouse (
			w_id INT NOT NULL,
			w_name VARCHAR(10), w_street_1 VARCHAR(20), w_street_2 VARCHAR(20),
			w_city VARCHAR(20), w_state CHAR(2), w_zip CHAR(9),
			w_tax DECIMAL(4,4), w_ytd DECIMAL(12,2),
			PRIMARY KEY (w_id))`,
		`CREATE TABLE district (
			d_w_id INT NOT NULL, d_id INT NOT NULL,
			d_name VARCHAR(10), d_street_1 VARCHAR(20), d_street_2 VARCHAR(20),
			d_city VARCHAR(20), d_state CHAR(2), d_zip CHAR(9),
			d_tax DECIMAL(4,4), d_ytd DECIMAL(12,2), d_next_o_id INT,
			PRIMARY KEY (d_w_id, d_id))`,
		`CREATE TABLE customer (
			c_w_id INT NOT NULL, c_d_id INT NOT NULL, c_id INT NOT NULL,
			c_first VARCHAR(16), c_middle CHAR(2), c_last VARCHAR(16),
			c_street_1 VARCHAR(20), c_city VARCHAR(20), c_state CHAR(2), c_zip CHAR(9),
			c_phone CHAR(16), c_since TIMESTAMP, c_credit CHAR(2),
			c_credit_lim DECIMAL(12,2), c_discount DECIMAL(4,4),
			c_balance DECIMAL(12,2), c_ytd_payment DECIMAL(12,2),
			c_payment_cnt INT, c_delivery_cnt INT, c_data VARCHAR(500),
			PRIMARY KEY (c_w_id, c_d_id, c_id))`,
		"CREATE INDEX idx_customer_name ON customer (c_w_id, c_d_id, c_last, c_first)",
		`CREATE TABLE history (
			h_c_id INT, h_c_d_id INT, h_c_w_id INT,
			h_d_id INT, h_w_id INT, h_date TIMESTAMP,
			h_amount DECIMAL(6,2), h_data VARCHAR(24))`,
		`CREATE TABLE oorder (
			o_w_id INT NOT NULL, o_d_id INT NOT NULL, o_id INT NOT NULL,
			o_c_id INT, o_entry_d TIMESTAMP, o_carrier_id INT,
			o_ol_cnt INT, o_all_local INT,
			PRIMARY KEY (o_w_id, o_d_id, o_id))`,
		"CREATE INDEX idx_order_customer ON oorder (o_w_id, o_d_id, o_c_id, o_id)",
		`CREATE TABLE new_order (
			no_w_id INT NOT NULL, no_d_id INT NOT NULL, no_o_id INT NOT NULL,
			PRIMARY KEY (no_w_id, no_d_id, no_o_id))`,
		`CREATE TABLE order_line (
			ol_w_id INT NOT NULL, ol_d_id INT NOT NULL, ol_o_id INT NOT NULL,
			ol_number INT NOT NULL,
			ol_i_id INT, ol_supply_w_id INT, ol_delivery_d TIMESTAMP,
			ol_quantity INT, ol_amount DECIMAL(6,2), ol_dist_info CHAR(24),
			PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))`,
		`CREATE TABLE item (
			i_id INT NOT NULL,
			i_im_id INT, i_name VARCHAR(24), i_price DECIMAL(5,2), i_data VARCHAR(50),
			PRIMARY KEY (i_id))`,
		`CREATE TABLE stock (
			s_w_id INT NOT NULL, s_i_id INT NOT NULL,
			s_quantity INT, s_dist_01 CHAR(24),
			s_ytd INT, s_order_cnt INT, s_remote_cnt INT, s_data VARCHAR(50),
			PRIMARY KEY (s_w_id, s_i_id))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 2000)
	if err != nil {
		return err
	}
	// Items are shared across warehouses.
	for i := int64(1); i <= b.items; i++ {
		if err := l.Exec("INSERT INTO item VALUES (?, ?, ?, ?, ?)",
			i, 1+rng.Int63n(10000), common.AString(rng, 14, 24),
			1+rng.Float64()*99, common.AString(rng, 26, 50)); err != nil {
			return err
		}
	}
	for w := int64(1); w <= b.warehouses; w++ {
		if err := l.Exec("INSERT INTO warehouse VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
			w, common.AString(rng, 6, 10), common.AString(rng, 10, 20), common.AString(rng, 10, 20),
			common.AString(rng, 10, 20), common.AString(rng, 2, 2), common.NString(rng, 9, 9),
			rng.Float64()*0.2, 300000.0); err != nil {
			return err
		}
		for i := int64(1); i <= b.items; i++ {
			if err := l.Exec("INSERT INTO stock VALUES (?, ?, ?, ?, 0, 0, 0, ?)",
				w, i, 10+rng.Int63n(91), common.AString(rng, 24, 24),
				common.AString(rng, 26, 50)); err != nil {
				return err
			}
		}
		for d := int64(1); d <= districtsPerWH; d++ {
			if err := l.Exec("INSERT INTO district VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
				w, d, common.AString(rng, 6, 10), common.AString(rng, 10, 20), common.AString(rng, 10, 20),
				common.AString(rng, 10, 20), common.AString(rng, 2, 2), common.NString(rng, 9, 9),
				rng.Float64()*0.2, 30000.0, b.initialOrders+1); err != nil {
				return err
			}
			if err := b.loadCustomersAndOrders(l, rng, w, d); err != nil {
				return err
			}
		}
	}
	return l.Close()
}

func (b *Benchmark) loadCustomersAndOrders(l *common.Loader, rng *rand.Rand, w, d int64) error {
	for c := int64(1); c <= b.custPerDist; c++ {
		credit := "GC"
		if common.FlipCoin(rng, 0.1) {
			credit = "BC"
		}
		var last string
		if c <= 1000 {
			last = common.LastName(c - 1)
		} else {
			last = common.RandomLastName(rng)
		}
		if err := l.Exec(`INSERT INTO customer VALUES
			(?, ?, ?, ?, 'OE', ?, ?, ?, ?, ?, ?, NOW(), ?, 50000, ?, -10, 10, 1, 0, ?)`,
			w, d, c, common.AString(rng, 8, 16), last,
			common.AString(rng, 10, 20), common.AString(rng, 10, 20), common.AString(rng, 2, 2),
			common.NString(rng, 9, 9), common.NString(rng, 16, 16),
			credit, rng.Float64()*0.5, common.AString(rng, 100, 300)); err != nil {
			return err
		}
		if err := l.Exec("INSERT INTO history VALUES (?, ?, ?, ?, ?, NOW(), 10, ?)",
			c, d, w, d, w, common.AString(rng, 12, 24)); err != nil {
			return err
		}
	}
	// Initial orders: one per customer in shuffled order; the most recent
	// third are undelivered (in new_order).
	perm := common.Shuffled(rng, int(b.custPerDist))
	undeliveredFrom := b.initialOrders * 2 / 3
	for i, ci := range perm {
		oid := int64(i) + 1
		cid := int64(ci) + 1
		olCnt := 5 + rng.Int63n(11)
		carrier := any(1 + rng.Int63n(10))
		if int64(i) >= undeliveredFrom {
			carrier = nil
		}
		if err := l.Exec("INSERT INTO oorder VALUES (?, ?, ?, ?, NOW(), ?, ?, 1)",
			w, d, oid, cid, carrier, olCnt); err != nil {
			return err
		}
		if int64(i) >= undeliveredFrom {
			if err := l.Exec("INSERT INTO new_order VALUES (?, ?, ?)", w, d, oid); err != nil {
				return err
			}
		}
		for ol := int64(1); ol <= olCnt; ol++ {
			var deliveryD any
			amount := 0.0
			if int64(i) < undeliveredFrom {
				deliveryD = common.RandomDate(rng)
			} else {
				amount = 0.01 + rng.Float64()*9999.98
			}
			if err := l.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, ?, 5, ?, ?)",
				w, d, oid, ol, 1+rng.Int63n(b.items), w, deliveryD, amount,
				common.AString(rng, 24, 24)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "NewOrder", Fn: b.newOrder},
		{Name: "Payment", Fn: b.payment},
		{Name: "OrderStatus", ReadOnly: true, Fn: b.orderStatus},
		{Name: "Delivery", Fn: b.delivery},
		{Name: "StockLevel", ReadOnly: true, Fn: b.stockLevel},
	}
}

// randWarehouse picks a home warehouse.
func (b *Benchmark) randWarehouse(rng *rand.Rand) int64 { return 1 + rng.Int63n(b.warehouses) }

// randCustomer picks a customer id with the spec's NURand skew.
func (b *Benchmark) randCustomer(rng *rand.Rand) int64 {
	return common.NURand(rng, 1023, 1, b.custPerDist)
}

// randItem picks an item id with the spec's NURand skew.
func (b *Benchmark) randItem(rng *rand.Rand) int64 {
	return common.NURand(rng, 8191, 1, b.items)
}

// newOrder is TPC-C's NewOrder transaction, including the spec's 1%
// intentional rollback on an invalid item.
func (b *Benchmark) newOrder(conn *dbdriver.Conn, rng *rand.Rand) error {
	w := b.randWarehouse(rng)
	d := 1 + rng.Int63n(districtsPerWH)
	c := b.randCustomer(rng)
	olCnt := 5 + rng.Int63n(11)
	rollback := common.FlipCoin(rng, 0.01)

	wrow, err := conn.QueryRow("SELECT w_tax FROM warehouse WHERE w_id = ?", w)
	if err != nil || wrow == nil {
		return orBroken(err, "warehouse")
	}
	drow, err := conn.QueryRow(
		"SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ? FOR UPDATE", w, d)
	if err != nil || drow == nil {
		return orBroken(err, "district")
	}
	oid := drow[1].Int()
	if _, err := conn.Exec(
		"UPDATE district SET d_next_o_id = ? WHERE d_w_id = ? AND d_id = ?", oid+1, w, d); err != nil {
		return err
	}
	crow, err := conn.QueryRow(
		"SELECT c_discount, c_last, c_credit FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		w, d, c)
	if err != nil || crow == nil {
		return orBroken(err, "customer")
	}
	if _, err := conn.Exec("INSERT INTO oorder VALUES (?, ?, ?, ?, NOW(), NULL, ?, 1)",
		w, d, oid, c, olCnt); err != nil {
		return err
	}
	if _, err := conn.Exec("INSERT INTO new_order VALUES (?, ?, ?)", w, d, oid); err != nil {
		return err
	}
	for ol := int64(1); ol <= olCnt; ol++ {
		item := b.randItem(rng)
		if rollback && ol == olCnt {
			item = b.items + 1 // unused item id: triggers the spec rollback
		}
		irow, err := conn.QueryRow("SELECT i_price FROM item WHERE i_id = ?", item)
		if err != nil {
			return err
		}
		if irow == nil {
			return core.ErrExpectedAbort // spec: 1% of NewOrders roll back
		}
		srow, err := conn.QueryRow(
			"SELECT s_quantity, s_dist_01 FROM stock WHERE s_w_id = ? AND s_i_id = ? FOR UPDATE", w, item)
		if err != nil || srow == nil {
			return orBroken(err, "stock")
		}
		qty := 1 + rng.Int63n(10)
		sq := srow[0].Int()
		if sq-qty >= 10 {
			sq -= qty
		} else {
			sq = sq - qty + 91
		}
		if _, err := conn.Exec(
			"UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_w_id = ? AND s_i_id = ?",
			sq, qty, w, item); err != nil {
			return err
		}
		amount := float64(qty) * irow[0].Float()
		if _, err := conn.Exec("INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?, NULL, ?, ?, ?)",
			w, d, oid, ol, item, w, qty, amount, srow[1].Str()); err != nil {
			return err
		}
	}
	return nil
}

// payment is TPC-C's Payment transaction; 60% of lookups are by customer
// last name.
func (b *Benchmark) payment(conn *dbdriver.Conn, rng *rand.Rand) error {
	w := b.randWarehouse(rng)
	d := 1 + rng.Int63n(districtsPerWH)
	amount := 1 + rng.Float64()*4999

	if _, err := conn.Exec("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?", amount, w); err != nil {
		return err
	}
	if _, err := conn.Exec("UPDATE district SET d_ytd = d_ytd + ? WHERE d_w_id = ? AND d_id = ?",
		amount, w, d); err != nil {
		return err
	}
	var cid int64
	if common.FlipCoin(rng, 0.6) {
		// By last name: pick the middle matching customer, per the spec.
		res, err := conn.Query(
			"SELECT c_id FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
			w, d, common.RandomLastName(rng))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return core.ErrExpectedAbort
		}
		cid = res.Rows[len(res.Rows)/2][0].Int()
	} else {
		cid = b.randCustomer(rng)
	}
	crow, err := conn.QueryRow(
		"SELECT c_balance, c_credit FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ? FOR UPDATE",
		w, d, cid)
	if err != nil || crow == nil {
		return orBroken(err, "customer")
	}
	if _, err := conn.Exec(`UPDATE customer SET c_balance = c_balance - ?,
		c_ytd_payment = c_ytd_payment + ?, c_payment_cnt = c_payment_cnt + 1
		WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?`, amount, amount, w, d, cid); err != nil {
		return err
	}
	_, err = conn.Exec("INSERT INTO history VALUES (?, ?, ?, ?, ?, NOW(), ?, ?)",
		cid, d, w, d, w, amount, common.AString(rng, 12, 24))
	return err
}

// orderStatus is TPC-C's OrderStatus read-only transaction.
func (b *Benchmark) orderStatus(conn *dbdriver.Conn, rng *rand.Rand) error {
	w := b.randWarehouse(rng)
	d := 1 + rng.Int63n(districtsPerWH)
	var cid int64
	if common.FlipCoin(rng, 0.6) {
		res, err := conn.Query(
			"SELECT c_id FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? ORDER BY c_first",
			w, d, common.RandomLastName(rng))
		if err != nil {
			return err
		}
		if len(res.Rows) == 0 {
			return core.ErrExpectedAbort
		}
		cid = res.Rows[len(res.Rows)/2][0].Int()
	} else {
		cid = b.randCustomer(rng)
	}
	if _, err := conn.QueryRow(
		"SELECT c_balance, c_first, c_middle, c_last FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
		w, d, cid); err != nil {
		return err
	}
	orow, err := conn.QueryRow(`SELECT o_id, o_carrier_id, o_entry_d FROM oorder
		WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? ORDER BY o_id DESC LIMIT 1`, w, d, cid)
	if err != nil {
		return err
	}
	if orow == nil {
		return nil // customer has no orders yet
	}
	_, err = conn.Query(`SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
		FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?`, w, d, orow[0].Int())
	return err
}

// delivery is TPC-C's Delivery transaction: deliver the oldest undelivered
// order of every district of one warehouse.
func (b *Benchmark) delivery(conn *dbdriver.Conn, rng *rand.Rand) error {
	w := b.randWarehouse(rng)
	carrier := 1 + rng.Int63n(10)
	for d := int64(1); d <= districtsPerWH; d++ {
		norow, err := conn.QueryRow(
			"SELECT no_o_id FROM new_order WHERE no_w_id = ? AND no_d_id = ? ORDER BY no_o_id LIMIT 1 FOR UPDATE",
			w, d)
		if err != nil {
			if dbdriver.IsRetryable(err) {
				// Another delivery is working this district. The spec
				// queues deliveries per warehouse; skipping the busy
				// district (instead of aborting the other nine) matches
				// that behaviour under first-updater-wins engines.
				continue
			}
			return err
		}
		if norow == nil {
			continue // district fully delivered
		}
		oid := norow[0].Int()
		if _, err := conn.Exec(
			"DELETE FROM new_order WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?", w, d, oid); err != nil {
			return err
		}
		orow, err := conn.QueryRow(
			"SELECT o_c_id FROM oorder WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?", w, d, oid)
		if err != nil || orow == nil {
			return orBroken(err, "oorder")
		}
		if _, err := conn.Exec(
			"UPDATE oorder SET o_carrier_id = ? WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
			carrier, w, d, oid); err != nil {
			return err
		}
		if _, err := conn.Exec(
			"UPDATE order_line SET ol_delivery_d = NOW() WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
			w, d, oid); err != nil {
			return err
		}
		sumrow, err := conn.QueryRow(
			"SELECT SUM(ol_amount) FROM order_line WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
			w, d, oid)
		if err != nil {
			return err
		}
		total := 0.0
		if sumrow != nil && !sumrow[0].IsNull() {
			total = sumrow[0].Float()
		}
		if _, err := conn.Exec(`UPDATE customer SET c_balance = c_balance + ?,
			c_delivery_cnt = c_delivery_cnt + 1 WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?`,
			total, w, d, orow[0].Int()); err != nil {
			return err
		}
	}
	return nil
}

// stockLevel is TPC-C's StockLevel read-only transaction.
func (b *Benchmark) stockLevel(conn *dbdriver.Conn, rng *rand.Rand) error {
	w := b.randWarehouse(rng)
	d := 1 + rng.Int63n(districtsPerWH)
	threshold := 10 + rng.Int63n(11)
	drow, err := conn.QueryRow("SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?", w, d)
	if err != nil || drow == nil {
		return orBroken(err, "district")
	}
	next := drow[0].Int()
	_, err = conn.QueryRow(`SELECT COUNT(DISTINCT ol.ol_i_id)
		FROM order_line ol JOIN stock s ON s.s_i_id = ol.ol_i_id
		WHERE ol.ol_w_id = ? AND ol.ol_d_id = ?
		  AND ol.ol_o_id >= ? AND ol.ol_o_id < ?
		  AND s.s_w_id = ? AND s.s_quantity < ?`,
		w, d, next-20, next, w, threshold)
	return err
}

// orBroken converts a nil error with a missing required row into a loud
// corruption report (these rows always exist in a correct load).
func orBroken(err error, what string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tpcc: required %s row missing", what)
}

func init() {
	core.RegisterBenchmark("tpcc", func(scale float64) core.Benchmark { return New(scale) })
}
