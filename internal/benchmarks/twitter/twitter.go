// Package twitter ports the Twitter benchmark (Table 1: "Social
// Networking"): a micro-blogging workload over users, tweets, and the
// follower graph, dominated by timeline reads with Zipf-skewed user
// popularity.
package twitter

import (
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// baseUsers and baseTweets size the graph at scale 1.
const (
	baseUsers      = 1000
	baseTweets     = 20000
	maxFollowsLoad = 20
)

// Benchmark is the Twitter workload instance.
type Benchmark struct {
	users      int64
	nextTweet  atomic.Int64
	userChoose *common.ScrambledZipfian
	tweetGen   *common.Latest
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	users := int64(common.ScaleCount(baseUsers, scale, 50))
	b := &Benchmark{
		users:      users,
		userChoose: common.NewScrambledZipfian(users),
		tweetGen:   common.NewLatest(int64(common.ScaleCount(baseTweets, scale, 500))),
	}
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "twitter" }

// DefaultMix implements core.Benchmark (OLTP-Bench's production-trace-derived
// mixture, dominated by timeline reads).
func (b *Benchmark) DefaultMix() []float64 {
	// GetFollowers, GetTweet, GetTweetsFromFollowing, GetUserTweets, InsertTweet
	return []float64{8, 1, 1, 89, 1}
}

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddls := []string{
		`CREATE TABLE user_profiles (
			uid INT NOT NULL,
			name VARCHAR(32),
			email VARCHAR(64),
			partitionid INT,
			followers INT,
			PRIMARY KEY (uid))`,
		`CREATE TABLE tweets (
			id BIGINT NOT NULL AUTO_INCREMENT,
			uid INT NOT NULL,
			text VARCHAR(140) NOT NULL,
			createdate TIMESTAMP,
			PRIMARY KEY (id))`,
		"CREATE INDEX idx_tweets_uid ON tweets (uid)",
		`CREATE TABLE follows (
			f1 INT NOT NULL,
			f2 INT NOT NULL,
			PRIMARY KEY (f1, f2))`,
		`CREATE TABLE followers (
			f1 INT NOT NULL,
			f2 INT NOT NULL,
			PRIMARY KEY (f1, f2))`,
	}
	for _, ddl := range ddls {
		if _, err := conn.Exec(ddl); err != nil {
			return err
		}
	}
	return nil
}

// Load implements core.Benchmark: users, a Zipf-ish follower graph, and an
// initial tweet corpus.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for u := int64(0); u < b.users; u++ {
		if err := l.Exec("INSERT INTO user_profiles VALUES (?, ?, ?, ?, ?)",
			u, common.LString(rng, 6, 12), common.LString(rng, 8, 14)+"@example.com",
			u%16, 0); err != nil {
			return err
		}
		// Follow a handful of (popularity-skewed) users.
		n := 1 + rng.Intn(maxFollowsLoad)
		seen := map[int64]bool{u: true}
		for i := 0; i < n; i++ {
			f := b.userChoose.Next(rng)
			if seen[f] {
				continue
			}
			seen[f] = true
			if err := l.Exec("INSERT INTO follows VALUES (?, ?)", u, f); err != nil {
				return err
			}
			if err := l.Exec("INSERT INTO followers VALUES (?, ?)", f, u); err != nil {
				return err
			}
		}
	}
	tweets := int64(common.ScaleCount(baseTweets, float64(b.users)/baseUsers, 500))
	for i := int64(0); i < tweets; i++ {
		if err := l.Exec("INSERT INTO tweets (uid, text, createdate) VALUES (?, ?, NOW())",
			b.userChoose.Next(rng), common.Text(rng, 8)); err != nil {
			return err
		}
	}
	b.nextTweet.Store(tweets)
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "GetFollowers", ReadOnly: true, Fn: b.getFollowers},
		{Name: "GetTweet", ReadOnly: true, Fn: b.getTweet},
		{Name: "GetTweetsFromFollowing", ReadOnly: true, Fn: b.getTweetsFromFollowing},
		{Name: "GetUserTweets", ReadOnly: true, Fn: b.getUserTweets},
		{Name: "InsertTweet", Fn: b.insertTweet},
	}
}

func (b *Benchmark) getFollowers(conn *dbdriver.Conn, rng *rand.Rand) error {
	uid := b.userChoose.Next(rng)
	res, err := conn.Query("SELECT f2 FROM followers WHERE f1 = ? LIMIT 20", uid)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		if _, err := conn.QueryRow("SELECT uid, name FROM user_profiles WHERE uid = ?", row[0].Int()); err != nil {
			return err
		}
	}
	return nil
}

func (b *Benchmark) getTweet(conn *dbdriver.Conn, rng *rand.Rand) error {
	id := b.tweetGen.Next(rng, b.nextTweet.Load())
	_, err := conn.QueryRow("SELECT * FROM tweets WHERE id = ?", id+1)
	return err
}

func (b *Benchmark) getTweetsFromFollowing(conn *dbdriver.Conn, rng *rand.Rand) error {
	uid := b.userChoose.Next(rng)
	res, err := conn.Query("SELECT f2 FROM follows WHERE f1 = ? LIMIT 20", uid)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		if _, err := conn.Query(
			"SELECT * FROM tweets WHERE uid = ? ORDER BY id DESC LIMIT 10", row[0].Int()); err != nil {
			return err
		}
	}
	return nil
}

func (b *Benchmark) getUserTweets(conn *dbdriver.Conn, rng *rand.Rand) error {
	uid := b.userChoose.Next(rng)
	_, err := conn.Query("SELECT * FROM tweets WHERE uid = ? ORDER BY id DESC LIMIT 10", uid)
	return err
}

func (b *Benchmark) insertTweet(conn *dbdriver.Conn, rng *rand.Rand) error {
	uid := b.userChoose.Next(rng)
	res, err := conn.Exec("INSERT INTO tweets (uid, text, createdate) VALUES (?, ?, NOW())",
		uid, common.Text(rng, 8))
	if err != nil {
		return err
	}
	if res.LastInsertID > b.nextTweet.Load() {
		b.nextTweet.Store(res.LastInsertID)
	}
	return nil
}

func init() {
	core.RegisterBenchmark("twitter", func(scale float64) core.Benchmark { return New(scale) })
}
