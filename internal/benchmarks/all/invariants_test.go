package all

import (
	"context"
	"testing"
	"time"

	"benchpress/internal/benchmarks/seats"
	"benchpress/internal/benchmarks/smallbank"
	"benchpress/internal/benchmarks/tpcc"
	"benchpress/internal/benchmarks/voter"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// runMixed prepares a benchmark and hammers it open-loop with the given mix.
func runMixed(t *testing.T, b core.Benchmark, engine string, mix []float64, d time.Duration, workers int) *dbdriver.DB {
	t.Helper()
	db, err := dbdriver.Open(engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := core.Prepare(b, db, 99); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: d, Rate: 0, Mix: mix}},
		core.Options{Terminals: workers, Seed: 5})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Collector().Errors() > 0 {
		t.Fatalf("%d errors during run", m.Collector().Errors())
	}
	return db
}

// TPC-C consistency condition 1 (adapted): for every district,
// d_next_o_id - 1 equals the maximum order id, and every undelivered order
// in new_order exists in oorder. Checked after a concurrent default-mix run
// on every engine.
func TestTPCCConsistency(t *testing.T) {
	for _, engine := range []string{"goserial", "golock", "gomvcc"} {
		t.Run(engine, func(t *testing.T) {
			b := tpcc.New(0.02)
			db := runMixed(t, b, engine, nil, 500*time.Millisecond, 4)
			c := db.Connect()
			defer c.Close()
			rows, err := c.Query("SELECT d_w_id, d_id, d_next_o_id FROM district")
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rows.Rows {
				w, did, next := d[0].Int(), d[1].Int(), d[2].Int()
				maxO, err := c.QueryRow(
					"SELECT MAX(o_id) FROM oorder WHERE o_w_id = ? AND o_d_id = ?", w, did)
				if err != nil {
					t.Fatal(err)
				}
				if maxO[0].Int() != next-1 {
					t.Errorf("w=%d d=%d: max(o_id)=%d, d_next_o_id=%d", w, did, maxO[0].Int(), next)
				}
				// Every new_order has a matching order row.
				missing, err := c.QueryRow(`SELECT COUNT(*) FROM new_order no
					LEFT JOIN oorder o ON o.o_w_id = no.no_w_id AND o.o_d_id = no.no_d_id AND o.o_id = no.no_o_id
					WHERE no.no_w_id = ? AND no.no_d_id = ? AND o.o_id IS NULL`, w, did)
				if err != nil {
					t.Fatal(err)
				}
				if missing[0].Int() != 0 {
					t.Errorf("w=%d d=%d: %d orphan new_order rows", w, did, missing[0].Int())
				}
			}
			// Order lines exist for every order created by NewOrder.
			cnt, err := c.QueryRow(`SELECT COUNT(*) FROM oorder o
				LEFT JOIN order_line ol ON ol.ol_w_id = o.o_w_id AND ol.ol_d_id = o.o_d_id
					AND ol.ol_o_id = o.o_id AND ol.ol_number = 1
				WHERE ol.ol_o_id IS NULL`)
			if err != nil {
				t.Fatal(err)
			}
			if cnt[0].Int() != 0 {
				t.Errorf("%d orders without a first order line", cnt[0].Int())
			}
		})
	}
}

// SmallBank: SendPayment and Amalgamate only move money; run a mix of just
// those two and assert the total balance is conserved exactly.
func TestSmallBankMoneyConservation(t *testing.T) {
	for _, engine := range []string{"goserial", "golock", "gomvcc"} {
		t.Run(engine, func(t *testing.T) {
			b := smallbank.New(0.02)
			// Mix: Amalgamate, Balance, DepositChecking, SendPayment,
			// TransactSavings, WriteCheck — only the pure-transfer ones.
			mix := []float64{30, 20, 0, 50, 0, 0}
			db := runMixed(t, b, engine, mix, 500*time.Millisecond, 4)
			c := db.Connect()
			defer c.Close()
			total, err := c.QueryRow(`SELECT SUM(s.bal) + SUM(c.bal) FROM savings s, checking c
				WHERE s.custid = c.custid`)
			if err != nil {
				t.Fatal(err)
			}
			accounts, _ := c.QueryRow("SELECT COUNT(*) FROM accounts")
			want := float64(accounts[0].Int()) * 2 * 10000
			if got := total[0].Float(); got < want-0.01 || got > want+0.01 {
				t.Errorf("total balance %.2f, want %.2f", got, want)
			}
		})
	}
}

// Voter: the per-phone vote cap must hold even under concurrency.
func TestVoterVoteCap(t *testing.T) {
	b := voter.New(0.001) // tiny phone space: forces the cap to bind
	db := runMixed(t, b, "golock", nil, 500*time.Millisecond, 4)
	c := db.Connect()
	defer c.Close()
	rows, err := c.Query("SELECT phone_number, COUNT(*) AS n FROM votes GROUP BY phone_number ORDER BY n DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) == 0 {
		t.Fatal("no votes recorded")
	}
	// The cap is checked-then-inserted without predicate locks, so allow a
	// small concurrency overshoot but catch gross violations.
	if n := rows.Rows[0][1].Int(); n > 10+4 {
		t.Errorf("phone %d has %d votes, cap is 10 (+worker slack)", rows.Rows[0][0].Int(), n)
	}
}

// SEATS: seat uniqueness per flight (the unique index must hold), and the
// seats_left counter must agree with the reservation count.
func TestSEATSSeatInvariants(t *testing.T) {
	b := seats.New(0.02)
	db := runMixed(t, b, "gomvcc", nil, 500*time.Millisecond, 4)
	c := db.Connect()
	defer c.Close()
	dup, err := c.QueryRow(`SELECT COUNT(*) - COUNT(DISTINCT r_f_id * 1000 + r_seat) FROM reservation`)
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].Int() != 0 {
		t.Errorf("%d duplicate (flight,seat) pairs", dup[0].Int())
	}
	// Per-flight conservation: f_seats_left + count(reservations) == 150.
	flights, err := c.Query("SELECT f_id, f_seats_left FROM flight LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flights.Rows {
		cnt, err := c.QueryRow("SELECT COUNT(*) FROM reservation WHERE r_f_id = ?", f[0].Int())
		if err != nil {
			t.Fatal(err)
		}
		if got := f[1].Int() + cnt[0].Int(); got != 150 {
			t.Errorf("flight %d: seats_left(%d) + reservations(%d) = %d, want 150",
				f[0].Int(), f[1].Int(), cnt[0].Int(), got)
		}
	}
}

// SIBench under the serial engine must never observe a stale minimum: the
// minimum only grows as updates increment values. (Under snapshot isolation
// the read skew the benchmark probes for is permitted.)
func TestSIBenchMinMonotoneUnderSerial(t *testing.T) {
	b, err := core.NewBenchmark("sibench", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dbdriver.Open("goserial")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := core.Prepare(b, db, 3); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: 400 * time.Millisecond, Rate: 0}},
		core.Options{Terminals: 4})
	done := make(chan struct{})
	go func() { m.Run(context.Background()); close(done) }()
	c := db.Connect()
	defer c.Close()
	prev := int64(-1)
	for {
		select {
		case <-done:
			if prev < 0 {
				t.Fatal("never observed a minimum")
			}
			return
		default:
		}
		row, err := c.QueryRow("SELECT MIN(value) FROM sitest")
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int() < prev {
			t.Fatalf("minimum went backwards: %d -> %d", prev, row[0].Int())
		}
		prev = row[0].Int()
	}
}
