// Package all links every benchmark port into a binary: importing it
// registers the full Table 1 suite with the core registry.
package all

import (
	// Each import registers one benchmark via its init function.
	_ "benchpress/internal/benchmarks/auctionmark"
	_ "benchpress/internal/benchmarks/chbenchmark"
	_ "benchpress/internal/benchmarks/epinions"
	_ "benchpress/internal/benchmarks/jpab"
	_ "benchpress/internal/benchmarks/linkbench"
	_ "benchpress/internal/benchmarks/resourcestresser"
	_ "benchpress/internal/benchmarks/seats"
	_ "benchpress/internal/benchmarks/sibench"
	_ "benchpress/internal/benchmarks/smallbank"
	_ "benchpress/internal/benchmarks/synthetic"
	_ "benchpress/internal/benchmarks/tatp"
	_ "benchpress/internal/benchmarks/tpcc"
	_ "benchpress/internal/benchmarks/twitter"
	_ "benchpress/internal/benchmarks/voter"
	_ "benchpress/internal/benchmarks/wikipedia"
	_ "benchpress/internal/benchmarks/ycsb"
)
