// Engine/mix sweep for the SEATS seat-accounting invariant: this test
// pinned down the stale-index-entry duplicate-row bug (see
// TestUpdatedIndexEntryNotDuplicated in internal/sqldb) and stays as a
// regression net across engines and transaction mixes.
package all

import (
	"context"
	"testing"
	"time"

	"benchpress/internal/benchmarks/seats"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

func checkSeats(t *testing.T, db *dbdriver.DB) (bad int) {
	c := db.Connect()
	defer c.Close()
	flights, _ := c.Query("SELECT f_id, f_seats_left FROM flight")
	for _, f := range flights.Rows {
		cnt, _ := c.QueryRow("SELECT COUNT(*) FROM reservation WHERE r_f_id = ?", f[0].Int())
		if f[1].Int()+cnt[0].Int() != 150 {
			bad++
		}
	}
	return bad
}

func runSeats(t *testing.T, engine string, workers int, mix []float64) int {
	b := seats.New(0.02)
	db, _ := dbdriver.Open(engine)
	defer db.Close()
	if err := core.Prepare(b, db, 99); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: 600 * time.Millisecond, Rate: 0, Mix: mix}},
		core.Options{Terminals: workers, Seed: 5})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s w=%d committed=%d aborted=%d errors=%d", engine, workers, m.Collector().Committed(), m.Collector().Aborted(), m.Collector().Errors())
	return checkSeats(t, db)
}

func TestSeatsIsolate(t *testing.T) {
	// DeleteReservation, FindFlights, FindOpenSeats, NewReservation, UpdateCustomer, UpdateReservation
	onlyNewDel := []float64{50, 0, 0, 50, 0, 0}
	for _, tc := range []struct {
		engine  string
		workers int
		mix     []float64
		label   string
	}{
		{"gomvcc", 1, onlyNewDel, "mvcc-1w-newdel"},
		{"gomvcc", 4, onlyNewDel, "mvcc-4w-newdel"},
		{"goserial", 4, onlyNewDel, "serial-4w-newdel"},
		{"golock", 4, onlyNewDel, "lock-4w-newdel"},
		{"gomvcc", 4, []float64{0, 0, 0, 100, 0, 0}, "mvcc-4w-newonly"},
		{"gomvcc", 4, []float64{100, 0, 0, 0, 0, 0}, "mvcc-4w-delonly"},
		{"gomvcc", 4, []float64{0, 0, 0, 50, 0, 50}, "mvcc-4w-new+upd"},
		{"gomvcc", 4, []float64{34, 0, 0, 33, 0, 33}, "mvcc-4w-new+del+upd"},
		{"gomvcc", 4, []float64{25, 0, 0, 25, 50, 0}, "mvcc-4w-new+del+cust"},
	} {
		bad := runSeats(t, tc.engine, tc.workers, tc.mix)
		t.Logf("%s: %d bad flights", tc.label, bad)
	}
}
