package all

import (
	"context"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// tinyScale keeps load times negligible in tests.
const tinyScale = 0.02

// TestEveryBenchmarkLoadsAndRuns is the suite-wide integration test: every
// registered benchmark must create its schema, load at a small scale, and
// sustain a short open-loop run on the MVCC engine with zero errors.
func TestEveryBenchmarkLoadsAndRuns(t *testing.T) {
	for _, name := range core.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := core.NewBenchmark(name, tinyScale)
			if err != nil {
				t.Fatal(err)
			}
			db, err := dbdriver.Open("gomvcc")
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := core.Prepare(b, db, 42); err != nil {
				t.Fatal(err)
			}
			m := core.NewManager(b, db, []core.Phase{{Duration: 400 * time.Millisecond, Rate: 0}},
				core.Options{Terminals: 4, Seed: 7})
			if err := m.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			c := m.Collector()
			if c.Committed() == 0 {
				t.Fatalf("no transactions committed (aborted=%d errors=%d)", c.Aborted(), c.Errors())
			}
			if c.Errors() > 0 {
				t.Fatalf("%d errors during run (committed=%d)", c.Errors(), c.Committed())
			}
			// Every declared transaction type must be exercised by the
			// default mixture (types with zero weight are exempt).
			snap := c.Snapshot()
			for i, w := range b.DefaultMix() {
				if w > 0 && snap.TypeCounts[i] == 0 {
					t.Errorf("transaction type %s never ran", snap.TypeNames[i])
				}
			}
		})
	}
}

// TestEveryBenchmarkOnAllEngines runs each benchmark briefly on all three
// engine personalities, confirming the ports are engine-agnostic.
func TestEveryBenchmarkOnAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, engine := range []string{"goserial", "golock", "gomvcc"} {
		for _, name := range core.BenchmarkNames() {
			engine, name := engine, name
			t.Run(engine+"/"+name, func(t *testing.T) {
				t.Parallel()
				b, err := core.NewBenchmark(name, tinyScale)
				if err != nil {
					t.Fatal(err)
				}
				db, err := dbdriver.Open(engine)
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				if err := core.Prepare(b, db, 42); err != nil {
					t.Fatal(err)
				}
				m := core.NewManager(b, db, []core.Phase{{Duration: 250 * time.Millisecond, Rate: 0}},
					core.Options{Terminals: 2, Seed: 11})
				if err := m.Run(context.Background()); err != nil {
					t.Fatal(err)
				}
				c := m.Collector()
				if c.Committed() == 0 {
					t.Fatalf("no commits (aborted=%d errors=%d)", c.Aborted(), c.Errors())
				}
				if c.Errors() > 0 {
					t.Fatalf("%d errors", c.Errors())
				}
			})
		}
	}
}

// TestBenchmarkContracts checks structural invariants of every port without
// running it: the default mixture is parallel to the procedure list, weights
// are non-negative with positive total, names are unique and non-empty, and
// tiny scale factors never break construction.
func TestBenchmarkContracts(t *testing.T) {
	for _, name := range core.BenchmarkNames() {
		for _, scale := range []float64{0.001, 0.02, 1, 2.5} {
			b, err := core.NewBenchmark(name, scale)
			if err != nil {
				t.Fatalf("%s @%g: %v", name, scale, err)
			}
			procs := b.Procedures()
			mix := b.DefaultMix()
			if len(procs) == 0 {
				t.Errorf("%s: no procedures", name)
			}
			if len(mix) != len(procs) {
				t.Errorf("%s: mix has %d weights for %d procedures", name, len(mix), len(procs))
			}
			total := 0.0
			for i, w := range mix {
				if w < 0 {
					t.Errorf("%s: negative weight %v at %d", name, w, i)
				}
				total += w
			}
			if total <= 0 {
				t.Errorf("%s: zero total weight", name)
			}
			seen := map[string]bool{}
			for _, p := range procs {
				if p.Name == "" || p.Fn == nil {
					t.Errorf("%s: procedure with empty name or nil fn", name)
				}
				if seen[p.Name] {
					t.Errorf("%s: duplicate procedure name %q", name, p.Name)
				}
				seen[p.Name] = true
			}
		}
	}
}
