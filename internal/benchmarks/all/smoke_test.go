package all

import (
	"context"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// smokeTable pins the benchmark registry: every port the suite ships, with
// its procedure count. A new port must be added here (and an accidentally
// dropped registration fails loudly) so the smoke run always covers the full
// set.
var smokeTable = []struct {
	name  string
	procs int
}{
	{"auctionmark", 7},
	{"chbenchmark", 10},
	{"epinions", 9},
	{"jpab", 4},
	{"linkbench", 10},
	{"resourcestresser", 6},
	{"seats", 6},
	{"sibench", 2},
	{"smallbank", 6},
	{"synthetic", 6},
	{"tatp", 7},
	{"tpcc", 5},
	{"twitter", 5},
	{"voter", 1},
	{"wikipedia", 5},
	{"ycsb", 6},
}

// TestSmokeAllBenchmarks loads every port at tiny scale on the MVCC engine
// and drives a short open-loop run under a uniform mixture, so each
// procedure - including ones with tiny default weights - executes. The gate:
// zero procedure errors and a non-zero committed count for every procedure.
func TestSmokeAllBenchmarks(t *testing.T) {
	registered := map[string]bool{}
	for _, name := range core.BenchmarkNames() {
		registered[name] = true
	}
	if len(registered) != len(smokeTable) {
		t.Errorf("registry has %d benchmarks, smoke table has %d", len(registered), len(smokeTable))
	}
	for _, tc := range smokeTable {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if !registered[tc.name] {
				t.Fatalf("benchmark %q is not registered", tc.name)
			}
			b, err := core.NewBenchmark(tc.name, tinyScale)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(b.Procedures()); got != tc.procs {
				t.Fatalf("procedure count = %d, want %d", got, tc.procs)
			}
			db, err := dbdriver.Open("gomvcc")
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := core.Prepare(b, db, 42); err != nil {
				t.Fatal(err)
			}
			m := core.NewManager(b, db, []core.Phase{{Duration: 500 * time.Millisecond, Rate: 0}},
				core.Options{Terminals: 4, Seed: 7})
			uniform := make([]float64, tc.procs)
			for i := range uniform {
				uniform[i] = 1
			}
			m.SetMix(uniform)
			if err := m.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			c := m.Collector()
			if c.Errors() > 0 {
				t.Fatalf("%d procedure errors (committed=%d aborted=%d)",
					c.Errors(), c.Committed(), c.Aborted())
			}
			snap := c.Snapshot()
			for i, n := range snap.TypeCounts {
				if n == 0 {
					t.Errorf("procedure %s committed zero transactions", snap.TypeNames[i])
				}
			}
		})
	}
}
