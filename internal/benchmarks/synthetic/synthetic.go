// Package synthetic is the 16th benchmark of the suite: a workload whose
// generator is a captured profile instead of a fixed mix. It wraps the
// profile's source benchmark (schema, loader, and transaction control code
// come from the real port) and replays the captured mixture under the
// synthesizer's arrival processes, with a live hot-key skew dial that
// re-parameterizes a fraction of transactions from a small hot seed pool.
//
// Instantiated through the registry ("synthetic") it replays an embedded
// sample profile over YCSB; the REST path builds it from a stored capture
// via FromProfile (POST /api/v1/workloads with {"benchmark": "synthetic",
// "profile": "<id>"}).
package synthetic

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/synth"
)

// hotSeedPool is the number of distinct hot parameter streams the skew dial
// collapses transactions onto: small enough that re-parameterized
// transactions collide on the same keys, large enough to exercise more than
// one row.
const hotSeedPool = 8

// Benchmark replays a captured profile through its source benchmark.
type Benchmark struct {
	src     core.Benchmark
	profile *synth.Profile
	mix     []float64
	// skewMilli is the hot-key dial in thousandths ([0,1000]), written by
	// SetSkew from the control API while workers run.
	skewMilli atomic.Int64
}

// FromProfile builds the synthetic benchmark for a profile: the profile's
// source benchmark is instantiated at the captured scale and the captured
// proportions become the default mixture.
func FromProfile(p *synth.Profile) (*Benchmark, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Benchmark == "synthetic" {
		return nil, fmt.Errorf("synthetic: profile %q is itself synthetic; capture records the real source", p.ID)
	}
	src, err := core.NewBenchmark(p.Benchmark, p.Scale)
	if err != nil {
		return nil, fmt.Errorf("synthetic: source benchmark: %w", err)
	}
	syn, err := synth.NewSynthesizer(p, 1)
	if err != nil {
		return nil, err
	}
	mix, err := syn.MixFor(src)
	if err != nil {
		return nil, err
	}
	return &Benchmark{src: src, profile: p, mix: mix}, nil
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "synthetic" }

// Source identifies the wrapped benchmark and scale (capture unwraps it so
// a profile of a synthetic run still names the real source).
func (b *Benchmark) Source() (string, float64) { return b.profile.Benchmark, b.profile.Scale }

// Profile returns the profile this benchmark replays.
func (b *Benchmark) Profile() *synth.Profile { return b.profile }

// DefaultMix implements core.Benchmark: the captured proportions, parallel
// to the source benchmark's procedure order.
func (b *Benchmark) DefaultMix() []float64 { return append([]float64(nil), b.mix...) }

// CreateSchema implements core.Benchmark by delegation.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error { return b.src.CreateSchema(conn) }

// Load implements core.Benchmark by delegation.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error { return b.src.Load(db, rng) }

// SetSkew implements core.Skewable: the fraction of transactions in [0,1]
// whose parameters are regenerated from the hot seed pool.
func (b *Benchmark) SetSkew(skew float64) {
	if skew < 0 {
		skew = 0
	}
	if skew > 1 {
		skew = 1
	}
	b.skewMilli.Store(int64(skew * 1000))
}

// Skew returns the current hot-key dial setting.
func (b *Benchmark) Skew() float64 { return float64(b.skewMilli.Load()) / 1000 }

// Procedures implements core.Benchmark: the source procedures, each wrapped
// with the skew dial. A skewed execution swaps the worker's RNG for one
// seeded from the hot pool, so the procedure regenerates one of a handful
// of parameter tuples — hot keys on any benchmark, without knowing its
// schema.
func (b *Benchmark) Procedures() []core.Procedure {
	src := b.src.Procedures()
	out := make([]core.Procedure, len(src))
	for i, p := range src {
		fn := p.Fn
		p.Fn = func(conn *dbdriver.Conn, rng *rand.Rand) error {
			if s := b.skewMilli.Load(); s > 0 && rng.Int63n(1000) < s {
				hot := rand.New(rand.NewSource(7907 + rng.Int63n(hotSeedPool)))
				return fn(conn, hot)
			}
			return fn(conn, rng)
		}
		out[i] = p
	}
	return out
}

// errBenchmark surfaces a construction failure at schema time, since the
// registry factory signature cannot return an error.
type errBenchmark struct{ err error }

func (e errBenchmark) Name() string                               { return "synthetic" }
func (e errBenchmark) Procedures() []core.Procedure               { return nil }
func (e errBenchmark) DefaultMix() []float64                      { return nil }
func (e errBenchmark) CreateSchema(conn *dbdriver.Conn) error     { return e.err }
func (e errBenchmark) Load(db *dbdriver.DB, rng *rand.Rand) error { return e.err }

// DefaultProfile is the embedded sample profile the registry path replays:
// a Poisson-arrival YCSB capture at the requested scale with the YCSB
// default proportions — so `-bench synthetic` works out of the box and the
// suite smoke test covers the wrapper.
func DefaultProfile(scale float64) *synth.Profile {
	names := []string{"Read", "Insert", "Scan", "Update", "Delete", "ReadModifyWrite"}
	weights := []float64{50, 5, 5, 30, 5, 5}
	var total float64
	for _, w := range weights {
		total += w
	}
	p := &synth.Profile{
		ID:          "default",
		Name:        "embedded ycsb sample",
		Benchmark:   "ycsb",
		Scale:       scale,
		DurationSec: 60,
		Rate:        100,
	}
	for i, n := range names {
		p.Types = append(p.Types, synth.TypeProfile{
			Name:       n,
			Attempts:   int64(60 * 100 * weights[i] / total),
			Proportion: weights[i] / total,
		})
	}
	// A deterministic exponential inter-arrival sample at the profile rate
	// (mean gap 10ms), i.e. a canned Poisson CDF.
	rng := rand.New(rand.NewSource(1))
	gaps := make([]int64, 1024)
	for i := range gaps {
		gaps[i] = int64(rng.ExpFloat64() * 10000)
	}
	sortGaps(gaps)
	p.InterArrivalUS = gaps
	p.InterArrivalCV = 1
	return p
}

// sortGaps is an insertion-free sort.Slice wrapper kept tiny for the init
// path.
func sortGaps(g []int64) {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && g[j] < g[j-1]; j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
}

func init() {
	core.RegisterBenchmark("synthetic", func(scale float64) core.Benchmark {
		b, err := FromProfile(DefaultProfile(scale))
		if err != nil {
			return errBenchmark{err}
		}
		return b
	})
}
