package synthetic

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/synth"
	"benchpress/internal/trace"

	// The round trip captures a real YCSB run as its source workload.
	_ "benchpress/internal/benchmarks/ycsb"
)

const tinyScale = 0.02

// TestSynthRoundTrip is the end-to-end synthesis acceptance check (run
// under -race by the verify gate): capture a closed-loop YCSB run into a
// profile, rebuild it as the synthetic benchmark, replay it open-loop at ×2
// amplification, and hold the replay to the captured mixture (±5 points)
// and the amplified rate (±20%).
func TestSynthRoundTrip(t *testing.T) {
	// --- capture leg ---
	src, err := core.NewBenchmark("ycsb", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := core.Prepare(src, db, 11); err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(src, db, []core.Phase{{Duration: 1200 * time.Millisecond, Rate: 300}},
		core.Options{Terminals: 4, Seed: 5})
	cap := synth.NewCapture("ycsb", "gomvcc", tinyScale)
	m.SetCapture(cap, 4)
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.SetCapture(nil, 0)
	p, err := cap.Finish("p1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rate < 200 || p.Rate > 330 {
		t.Fatalf("captured rate %.1f, target was 300", p.Rate)
	}

	// --- synthesize leg: ×2 users, open loop ---
	sb, err := FromProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if name, scale := sb.Source(); name != "ycsb" || scale != tinyScale {
		t.Fatalf("source = %s/%v", name, scale)
	}
	syn, err := synth.NewSynthesizer(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := core.Prepare(sb, db2, 13); err != nil {
		t.Fatal(err)
	}
	m2 := core.NewManager(sb, db2, []core.Phase{{Duration: 1200 * time.Millisecond, Rate: 0}},
		core.Options{Terminals: 8, Seed: 9})
	if err := m2.SetArrival(syn.Spec()); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Rate conformance: delivered ~= 2x the captured rate.
	got := float64(m2.Collector().Committed()+m2.Collector().Aborted()) / 1.2
	want := 2 * p.Rate
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("replay rate %.1f, want ~%.1f (x2 of %.1f)", got, want, p.Rate)
	}

	// Mixture conformance: per-type proportions within +-5 points.
	snap := m2.Collector().Snapshot()
	var total int64
	for _, n := range snap.TypeCounts {
		total += n
	}
	if total == 0 {
		t.Fatal("replay committed nothing")
	}
	wantProp := map[string]float64{}
	for _, tp := range p.Types {
		wantProp[tp.Name] = tp.Proportion
	}
	for i, name := range snap.TypeNames {
		gotProp := float64(snap.TypeCounts[i]) / float64(total)
		if math.Abs(gotProp-wantProp[name]) > 0.05 {
			t.Errorf("type %s proportion %.3f, captured %.3f", name, gotProp, wantProp[name])
		}
	}
}

// digestSink counts distinct parameter digests per type.
type digestSink struct {
	mu      sync.Mutex
	digests map[string]map[string]bool
}

func (d *digestSink) ObserveAttempt(e trace.Entry, args []any) {
	if e.Params == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.digests == nil {
		d.digests = map[string]map[string]bool{}
	}
	set := d.digests[e.Type]
	if set == nil {
		set = map[string]bool{}
		d.digests[e.Type] = set
	}
	set[e.Params] = true
}

func (d *digestSink) distinct(typ string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.digests[typ])
}

// TestSkewDialConcentratesKeys drives the synthetic benchmark with and
// without the hot-key dial and compares distinct parameter digests: at skew
// 1.0 every transaction re-parameterizes from the hot seed pool, so the
// replay touches a tiny key set.
func TestSkewDialConcentratesKeys(t *testing.T) {
	run := func(skew float64) int {
		b, err := FromProfile(DefaultProfile(tinyScale))
		if err != nil {
			t.Fatal(err)
		}
		db, err := dbdriver.Open("gomvcc")
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := core.Prepare(b, db, 3); err != nil {
			t.Fatal(err)
		}
		m := core.NewManager(b, db, []core.Phase{{Duration: 500 * time.Millisecond, Rate: 0}},
			core.Options{Terminals: 2, Seed: 17})
		if err := m.SetArrival(core.ArrivalSpec{Process: core.ProcessUniform, BaseRate: 400, Skew: skew}); err != nil {
			t.Fatal(err)
		}
		sink := &digestSink{}
		m.SetCapture(sink, 1)
		if err := m.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Read keys come from the worker RNG, so the hot seed pool bounds
		// them (Insert draws from an atomic sequence and stays unique
		// regardless of skew — excluded).
		return sink.distinct("Read")
	}
	cold := run(0)
	hot := run(1)
	if cold < 30 {
		t.Fatalf("unskewed run produced only %d distinct Read keys", cold)
	}
	if hot > hotSeedPool {
		t.Fatalf("skewed run read %d distinct keys, pool is %d (unskewed: %d)", hot, hotSeedPool, cold)
	}
}

func TestFromProfileRejects(t *testing.T) {
	base := DefaultProfile(1)
	self := *base
	self.Benchmark = "synthetic"
	if _, err := FromProfile(&self); err == nil {
		t.Fatal("synthetic-of-synthetic accepted")
	}
	missing := *base
	missing.Benchmark = "no-such-benchmark"
	if _, err := FromProfile(&missing); err == nil {
		t.Fatal("unknown source accepted")
	}
	badType := *base
	badType.Types = []synth.TypeProfile{{Name: "NotAProcedure", Attempts: 1, Proportion: 1}}
	if _, err := FromProfile(&badType); err == nil {
		t.Fatal("unknown transaction type accepted")
	}
}

func TestRegistryFactory(t *testing.T) {
	b, err := core.NewBenchmark("synthetic", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Procedures()); got != 6 {
		t.Fatalf("procedures = %d", got)
	}
	mix := b.DefaultMix()
	var sum float64
	maxI := 0
	for i, w := range mix {
		sum += w
		if w > mix[maxI] {
			maxI = i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mix sum = %v", sum)
	}
	if b.Procedures()[maxI].Name != "Read" {
		t.Fatalf("heaviest procedure = %s, want Read", b.Procedures()[maxI].Name)
	}
	// The wrapper must satisfy the skew dial interface.
	if _, ok := b.(core.Skewable); !ok {
		t.Fatal("synthetic benchmark is not Skewable")
	}
}
