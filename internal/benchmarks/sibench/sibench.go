// Package sibench ports SIBench (Table 1: "Transactional Isolation"), the
// micro-benchmark from Cahill et al.'s serializable-snapshot-isolation work:
// readers scan for the minimum value while writers increment rows. Under
// snapshot isolation the reader can observe a stale minimum, which is
// exactly the anomaly the benchmark exists to probe.
package sibench

import (
	"math/rand"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// baseRows is the table size at scale 1.
const baseRows = 1000

// Benchmark is the SIBench workload instance.
type Benchmark struct {
	rows int64
}

// New builds the benchmark at a scale factor.
func New(scale float64) *Benchmark {
	return &Benchmark{rows: int64(common.ScaleCount(baseRows, scale, 10))}
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "sibench" }

// DefaultMix implements core.Benchmark.
func (b *Benchmark) DefaultMix() []float64 { return []float64{50, 50} }

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	_, err := conn.Exec(`CREATE TABLE sitest (
		id INT NOT NULL,
		value INT NOT NULL,
		PRIMARY KEY (id))`)
	return err
}

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for i := int64(0); i < b.rows; i++ {
		if err := l.Exec("INSERT INTO sitest VALUES (?, ?)", i, i); err != nil {
			return err
		}
	}
	return l.Close()
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "MinQuery", ReadOnly: true, Fn: b.minQuery},
		{Name: "UpdateRecord", Fn: b.updateRecord},
	}
}

func (b *Benchmark) minQuery(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT MIN(value) FROM sitest")
	return err
}

func (b *Benchmark) updateRecord(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.Exec("UPDATE sitest SET value = value + 1 WHERE id = ?", rng.Int63n(b.rows))
	return err
}

func init() {
	core.RegisterBenchmark("sibench", func(scale float64) core.Benchmark { return New(scale) })
}
