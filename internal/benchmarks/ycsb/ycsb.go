// Package ycsb ports the Yahoo! Cloud Serving Benchmark (Table 1: "Scalable
// Key-value Store") to the testbed: one wide usertable and six operations
// (read, insert, scan, update, delete, read-modify-write) with a scrambled
// Zipfian key chooser.
package ycsb

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"benchpress/internal/benchmarks/common"
	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/dialect"
)

// fieldCount is the number of payload columns (YCSB default 10).
const fieldCount = 10

// fieldLength is the payload column width (YCSB default 100).
const fieldLength = 100

// baseRecords is the record count at scale factor 1.
const baseRecords = 10000

// Benchmark is the YCSB workload instance.
type Benchmark struct {
	records int
	chooser *common.ScrambledZipfian
	// nextKey hands out fresh keys for inserts; shared across workers.
	nextKey atomic.Int64
	stmts   *dialect.Catalog
}

// New builds the benchmark at a scale factor (records = 10000 x scale).
func New(scale float64) *Benchmark {
	n := common.ScaleCount(baseRecords, scale, 100)
	b := &Benchmark{
		records: n,
		chooser: common.NewScrambledZipfian(int64(n)),
		stmts:   dialect.NewCatalog(),
	}
	// Loaded keys are 0..n-1 and Add returns the incremented value, so the
	// first fresh insert must come out as n: store n-1.
	b.nextKey.Store(int64(n) - 1)
	// Canonical statements with one expert-contributed dialect variant,
	// exercising the human-written dialect translation path the paper
	// describes.
	b.stmts.Register("scan", "SELECT * FROM usertable WHERE ycsb_key >= ? AND ycsb_key <= ? LIMIT 100")
	b.stmts.Override("scan", "derby",
		"SELECT * FROM usertable WHERE ycsb_key >= ? AND ycsb_key <= ? FETCH FIRST 100 ROWS ONLY")
	return b
}

// Name implements core.Benchmark.
func (b *Benchmark) Name() string { return "ycsb" }

// Records returns the initially loaded record count.
func (b *Benchmark) Records() int { return b.records }

// DefaultMix implements core.Benchmark: the OLTP-Bench YCSB default of a
// read-mostly mixture.
func (b *Benchmark) DefaultMix() []float64 {
	// Read, Insert, Scan, Update, Delete, ReadModifyWrite
	return []float64{50, 5, 5, 30, 5, 5}
}

// ReadOnlyMix is the preset used by the game's "Read-only" option.
func (b *Benchmark) ReadOnlyMix() []float64 { return []float64{95, 0, 5, 0, 0, 0} }

// WriteHeavyMix is the preset used by the game's "Super-writes" option.
func (b *Benchmark) WriteHeavyMix() []float64 { return []float64{5, 15, 0, 60, 5, 15} }

// CreateSchema implements core.Benchmark.
func (b *Benchmark) CreateSchema(conn *dbdriver.Conn) error {
	ddl := "CREATE TABLE usertable (ycsb_key INT NOT NULL"
	for i := 1; i <= fieldCount; i++ {
		ddl += fmt.Sprintf(", field%d VARCHAR(%d)", i, fieldLength)
	}
	ddl += ", PRIMARY KEY (ycsb_key))"
	_, err := conn.Exec(ddl)
	return err
}

// insertSQL builds the INSERT statement text once.
var insertSQL = func() string {
	sql := "INSERT INTO usertable VALUES (?"
	for i := 0; i < fieldCount; i++ {
		sql += ", ?"
	}
	return sql + ")"
}()

// Load implements core.Benchmark.
func (b *Benchmark) Load(db *dbdriver.DB, rng *rand.Rand) error {
	l, err := common.NewLoader(db, 1000)
	if err != nil {
		return err
	}
	for k := 0; k < b.records; k++ {
		args := make([]any, 0, fieldCount+1)
		args = append(args, k)
		for f := 0; f < fieldCount; f++ {
			args = append(args, common.AString(rng, fieldLength/2, fieldLength))
		}
		if err := l.Exec(insertSQL, args...); err != nil {
			return err
		}
	}
	return l.Close()
}

// Resume implements core.Resumer: when Prepare keeps a recovered dataset
// instead of reloading, re-seed the insert-key allocator past the highest
// surviving key so fresh inserts do not collide with rows inserted by the
// previous run.
func (b *Benchmark) Resume(db *dbdriver.DB) (err error) {
	conn := db.Connect()
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	row, err := conn.QueryRow("SELECT ycsb_key FROM usertable ORDER BY ycsb_key DESC LIMIT 1")
	if err != nil {
		return err
	}
	if row != nil {
		if max := row[0].Int(); max > b.nextKey.Load() {
			b.nextKey.Store(max)
		}
	}
	return nil
}

// key draws a Zipf-hot existing key.
func (b *Benchmark) key(rng *rand.Rand) int64 {
	return b.chooser.Next(rng)
}

// Procedures implements core.Benchmark.
func (b *Benchmark) Procedures() []core.Procedure {
	return []core.Procedure{
		{Name: "Read", ReadOnly: true, Fn: b.read},
		{Name: "Insert", Fn: b.insert},
		{Name: "Scan", ReadOnly: true, Fn: b.scan},
		{Name: "Update", Fn: b.update},
		{Name: "Delete", Fn: b.delete},
		{Name: "ReadModifyWrite", Fn: b.readModifyWrite},
	}
}

func (b *Benchmark) read(conn *dbdriver.Conn, rng *rand.Rand) error {
	_, err := conn.QueryRow("SELECT * FROM usertable WHERE ycsb_key = ?", b.key(rng))
	return err
}

func (b *Benchmark) insert(conn *dbdriver.Conn, rng *rand.Rand) error {
	k := b.nextKey.Add(1)
	args := make([]any, 0, fieldCount+1)
	args = append(args, k)
	for f := 0; f < fieldCount; f++ {
		args = append(args, common.AString(rng, fieldLength/2, fieldLength))
	}
	_, err := conn.Exec(insertSQL, args...)
	return err
}

func (b *Benchmark) scan(conn *dbdriver.Conn, rng *rand.Rand) error {
	start := b.key(rng)
	sql, _ := b.stmts.SQL("scan", conn.DB().Personality().Dialect)
	// The engine accepts the canonical dialect; resolve anyway so dialect
	// plumbing is exercised, then fall back if a foreign variant leaked in.
	res, err := conn.Query(sql, start, start+100)
	if err != nil {
		res, err = conn.Query("SELECT * FROM usertable WHERE ycsb_key >= ? AND ycsb_key <= ? LIMIT 100", start, start+100)
	}
	_ = res
	return err
}

func (b *Benchmark) update(conn *dbdriver.Conn, rng *rand.Rand) error {
	field := 1 + rng.Intn(fieldCount)
	sql := fmt.Sprintf("UPDATE usertable SET field%d = ? WHERE ycsb_key = ?", field)
	_, err := conn.Exec(sql, common.AString(rng, fieldLength/2, fieldLength), b.key(rng))
	return err
}

func (b *Benchmark) delete(conn *dbdriver.Conn, rng *rand.Rand) error {
	// Delete from the insert tail rather than the Zipfian hot set: deleting
	// hot keys would hollow out the working set over a long run, turning
	// later reads and updates into no-op misses and skewing every
	// measurement that follows.
	k := int64(b.records)
	if max := b.nextKey.Load(); max > k {
		k += rng.Int63n(max - k)
	} else {
		k = b.key(rng)
	}
	_, err := conn.Exec("DELETE FROM usertable WHERE ycsb_key = ?", k)
	return err
}

func (b *Benchmark) readModifyWrite(conn *dbdriver.Conn, rng *rand.Rand) error {
	k := b.key(rng)
	if _, err := conn.Query("SELECT * FROM usertable WHERE ycsb_key = ? FOR UPDATE", k); err != nil {
		return err
	}
	field := 1 + rng.Intn(fieldCount)
	sql := fmt.Sprintf("UPDATE usertable SET field%d = ? WHERE ycsb_key = ?", field)
	_, err := conn.Exec(sql, common.AString(rng, fieldLength/2, fieldLength), k)
	return err
}

func init() {
	core.RegisterBenchmark("ycsb", func(scale float64) core.Benchmark { return New(scale) })
}
