package ycsb

import (
	"math/rand"
	"strings"
	"testing"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
)

// openLoaded prepares a tiny YCSB database on the MVCC engine.
func openLoaded(t *testing.T) (*Benchmark, *dbdriver.DB) {
	t.Helper()
	b := New(0.02)
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	if err := core.Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	return b, db
}

func TestSchemaLoadCounts(t *testing.T) {
	b, db := openLoaded(t)
	conn := db.Connect()
	defer func() { _ = conn.Close() }()

	row, err := conn.QueryRow("SELECT COUNT(*) FROM usertable")
	if err != nil {
		t.Fatal(err)
	}
	if got := int(row[0].Int()); got != b.Records() {
		t.Errorf("usertable rows = %d, want %d", got, b.Records())
	}
	// Every payload field is populated on a sampled row.
	sample, err := conn.QueryRow("SELECT * FROM usertable WHERE ycsb_key = ?", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != fieldCount+1 {
		t.Fatalf("sampled row has %d columns, want %d", len(sample), fieldCount+1)
	}
	for i := 1; i < len(sample); i++ {
		if sample[i].Str() == "" {
			t.Errorf("field%d empty after load", i)
		}
	}
}

// TestProcedureRoundTrips runs each YCSB operation once inside an explicit
// transaction and checks its observable effect.
func TestProcedureRoundTrips(t *testing.T) {
	b, db := openLoaded(t)
	conn := db.Connect()
	defer func() { _ = conn.Close() }()
	rng := rand.New(rand.NewSource(3))

	inTxn := func(t *testing.T, fn func(*dbdriver.Conn, *rand.Rand) error) {
		t.Helper()
		if err := conn.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := fn(conn, rng); err != nil {
			t.Fatal(err)
		}
		if err := conn.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	count := func(t *testing.T) int {
		t.Helper()
		row, err := conn.QueryRow("SELECT COUNT(*) FROM usertable")
		if err != nil {
			t.Fatal(err)
		}
		return int(row[0].Int())
	}

	before := count(t)
	inTxn(t, b.read)
	inTxn(t, b.scan)
	inTxn(t, b.update)
	inTxn(t, b.readModifyWrite)
	if got := count(t); got != before {
		t.Fatalf("read-side operations changed row count: %d -> %d", before, got)
	}
	inTxn(t, b.insert)
	if got := count(t); got != before+1 {
		t.Fatalf("insert: row count %d, want %d", got, before+1)
	}
	inTxn(t, b.delete)
	if got := count(t); got != before {
		t.Fatalf("delete: row count %d, want %d", got, before)
	}
}

// TestScanDialectOverride checks the expert-contributed Derby variant is what
// the catalog hands back for that dialect, while the canonical form survives
// for everyone else.
func TestScanDialectOverride(t *testing.T) {
	b := New(0.02)
	derby, ok := b.stmts.SQL("scan", "derby")
	if !ok || !strings.Contains(derby, "FETCH FIRST 100 ROWS ONLY") {
		t.Errorf("derby scan = %q (ok=%v), want FETCH FIRST form", derby, ok)
	}
	canonical, ok := b.stmts.SQL("scan", "postgres")
	if !ok || !strings.Contains(canonical, "LIMIT 100") {
		t.Errorf("postgres scan = %q (ok=%v), want LIMIT form", canonical, ok)
	}
}
