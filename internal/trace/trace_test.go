package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	entries := []Entry{
		{StartUS: 0, LatencyUS: 1500, Type: "NewOrder", Phase: 0, Status: "ok", Worker: 1},
		{StartUS: 2000, LatencyUS: 900, Type: "Payment", Phase: 0, Status: "ok", Worker: 2},
		{StartUS: 1_100_000, LatencyUS: 100, Type: "NewOrder", Phase: 1, Status: "abort", Worker: 1},
		{StartUS: 1_200_000, LatencyUS: 50, Type: "Delivery", Phase: 1, Status: "error", Worker: 3},
	}
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("len = %d", w.Len())
	}
	w.Flush()
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("read %d entries", len(got))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n0 100 A 0 ok 0\n"
	got, err := Read(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestReadMalformed(t *testing.T) {
	for _, in := range []string{"1 2 3\n", "x 100 A 0 ok 0\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("malformed %q accepted", in)
		}
	}
}

func TestAnalyze(t *testing.T) {
	var entries []Entry
	// Phase 0: 100 tx over ~1s at 1ms latency; phase 1: 50 tx with aborts.
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{
			StartUS: int64(i) * 10_000, LatencyUS: 1000, Type: "A", Phase: 0, Status: "ok",
		})
	}
	for i := 0; i < 50; i++ {
		st := "ok"
		if i%10 == 0 {
			st = "abort"
		}
		entries = append(entries, Entry{
			StartUS: 1_000_000 + int64(i)*10_000, LatencyUS: 2000, Type: "B", Phase: 1, Status: st,
		})
	}
	rep := Analyze(entries)
	if rep.Total != 150 || rep.Committed != 145 {
		t.Fatalf("total=%d committed=%d", rep.Total, rep.Committed)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	p0 := rep.Phases[0]
	if p0.Committed != 100 || p0.Aborted != 0 {
		t.Fatalf("p0 = %+v", p0)
	}
	if p0.P50US != 1000 || p0.MeanUS != 1000 {
		t.Fatalf("p0 latency = %+v", p0)
	}
	if p0.TPS < 80 || p0.TPS > 120 {
		t.Fatalf("p0 tps = %v", p0.TPS)
	}
	p1 := rep.Phases[1]
	if p1.Aborted != 5 || p1.TypeCounts["B"] != 45 {
		t.Fatalf("p1 = %+v", p1)
	}
	if len(rep.ThroughputSeries) < 2 {
		t.Fatalf("series = %v", rep.ThroughputSeries)
	}
}

func TestJitterCV(t *testing.T) {
	if cv := JitterCV([]int{100, 100, 100}); cv != 0 {
		t.Fatalf("flat series cv = %v", cv)
	}
	cv := JitterCV([]int{0, 200, 0, 200})
	if math.Abs(cv-1.0) > 1e-9 {
		t.Fatalf("oscillating cv = %v, want 1.0", cv)
	}
	if JitterCV(nil) != 0 || JitterCV([]int{0, 0}) != 0 {
		t.Fatal("degenerate series")
	}
}

func TestConformance(t *testing.T) {
	if c := Conformance([]int{100, 100}, 100); c != 0 {
		t.Fatalf("perfect conformance = %v", c)
	}
	c := Conformance([]int{90, 110}, 100)
	if math.Abs(c-0.1) > 1e-9 {
		t.Fatalf("conformance = %v, want 0.1", c)
	}
	if Conformance(nil, 100) != 0 || Conformance([]int{5}, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestRateSchedule(t *testing.T) {
	var entries []Entry
	// 100 tps for one second, then 50 tps, with aborts interleaved.
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{StartUS: int64(i) * 10_000, Status: "ok"})
	}
	for i := 0; i < 50; i++ {
		entries = append(entries, Entry{StartUS: 1_000_000 + int64(i)*20_000, Status: "ok"})
		entries = append(entries, Entry{StartUS: 1_000_000 + int64(i)*20_000, Status: "abort"})
	}
	rates := RateSchedule(entries, time.Second)
	if len(rates) != 2 || rates[0] != 100 || rates[1] != 50 {
		t.Fatalf("rates = %v", rates)
	}
	if RateSchedule(nil, time.Second) != nil {
		t.Fatal("empty trace should yield nil schedule")
	}
	// Half-second windows double the resolution.
	rates = RateSchedule(entries, 500*time.Millisecond)
	if len(rates) != 4 || rates[0] != 100 {
		t.Fatalf("half-second rates = %v", rates)
	}
}
