// Package trace records one line per transaction attempt (OLTP-Bench's
// trace.txt) and analyzes recorded traces: per-phase rollups, latency
// percentiles, rate conformance, and throughput jitter.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Entry is one transaction attempt.
type Entry struct {
	// StartUS is the start offset in microseconds since the run began.
	StartUS int64
	// LatencyUS is the attempt latency in microseconds.
	LatencyUS int64
	// Type is the transaction type name.
	Type string
	// Phase is the phase ordinal the attempt ran in.
	Phase int
	// Status is "ok", "abort", or "error".
	Status string
	// Worker is the worker ordinal.
	Worker int
	// Params is an optional sampled parameter digest (see FormatParams):
	// the arguments of the attempt's first statement, rendered as one
	// whitespace-free field. Empty on unsampled attempts; written as an
	// optional seventh column so old traces stay readable.
	Params string
}

// maxParamDigest caps the rendered parameter digest so a pathological
// string argument cannot bloat the trace line.
const maxParamDigest = 96

// FormatParams renders statement arguments as a compact single-field digest:
// values joined by ',', whitespace replaced, truncated at maxParamDigest
// bytes. The digest is what capture mode persists per sampled attempt.
func FormatParams(args []any) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		var s string
		switch v := a.(type) {
		case string:
			s = v
		case int:
			s = strconv.Itoa(v)
		case int64:
			s = strconv.FormatInt(v, 10)
		case float64:
			s = strconv.FormatFloat(v, 'g', -1, 64)
		default:
			s = fmt.Sprint(v)
		}
		for _, r := range s {
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
				r = '_'
			}
			b.WriteRune(r)
			if b.Len() >= maxParamDigest {
				return b.String()
			}
		}
	}
	return b.String()
}

// Writer appends trace entries to an io.Writer, safely from many workers.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	n   int64
	out io.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), out: w}
}

// Add appends one entry. Entries with a parameter digest carry it as a
// seventh column; the digest itself is whitespace-free by construction.
func (w *Writer) Add(e Entry) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	var err error
	if e.Params == "" {
		_, err = fmt.Fprintf(w.bw, "%d %d %s %d %s %d\n",
			e.StartUS, e.LatencyUS, e.Type, e.Phase, e.Status, e.Worker)
	} else {
		_, err = fmt.Fprintf(w.bw, "%d %d %s %d %s %d %s\n",
			e.StartUS, e.LatencyUS, e.Type, e.Phase, e.Status, e.Worker, e.Params)
	}
	return err
}

// Len returns the number of entries written.
func (w *Writer) Len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush drains buffered output.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

// Read parses a trace stream.
func Read(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 6 && len(f) != 7 {
			return nil, fmt.Errorf("trace: line %d: want 6 or 7 fields, got %d", line, len(f))
		}
		start, err1 := strconv.ParseInt(f[0], 10, 64)
		lat, err2 := strconv.ParseInt(f[1], 10, 64)
		phase, err3 := strconv.Atoi(f[3])
		worker, err4 := strconv.Atoi(f[5])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace: line %d: malformed", line)
		}
		e := Entry{
			StartUS: start, LatencyUS: lat, Type: f[2],
			Phase: phase, Status: f[4], Worker: worker,
		}
		if len(f) == 7 {
			e.Params = f[6]
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// PhaseReport summarizes one phase of a trace.
type PhaseReport struct {
	Phase      int
	Committed  int
	Aborted    int
	Errors     int
	Duration   time.Duration
	TPS        float64
	MeanUS     float64
	P50US      int64
	P95US      int64
	P99US      int64
	TypeCounts map[string]int
}

// Report is a full trace analysis.
type Report struct {
	Total     int
	Committed int
	Phases    []PhaseReport
	// ThroughputSeries is committed transactions per second of the run.
	ThroughputSeries []int
	// JitterCV is the coefficient of variation of the per-second series, a
	// dimensionless measure of throughput oscillation (the tunnel-test
	// metric in the demo's takeaways).
	JitterCV float64
}

// Analyze computes a full report from entries.
func Analyze(entries []Entry) Report {
	rep := Report{Total: len(entries)}
	byPhase := map[int][]Entry{}
	var maxSec int64 = -1
	for _, e := range entries {
		byPhase[e.Phase] = append(byPhase[e.Phase], e)
		if e.Status == "ok" {
			rep.Committed++
			if s := e.StartUS / 1e6; s > maxSec {
				maxSec = s
			}
		}
	}
	if maxSec >= 0 {
		rep.ThroughputSeries = make([]int, maxSec+1)
		for _, e := range entries {
			if e.Status == "ok" {
				rep.ThroughputSeries[e.StartUS/1e6]++
			}
		}
		rep.JitterCV = JitterCV(rep.ThroughputSeries)
	}
	var phases []int
	for p := range byPhase {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	for _, p := range phases {
		rep.Phases = append(rep.Phases, analyzePhase(p, byPhase[p]))
	}
	return rep
}

func analyzePhase(phase int, entries []Entry) PhaseReport {
	pr := PhaseReport{Phase: phase, TypeCounts: map[string]int{}}
	var lats []int64
	var sum float64
	var minStart, maxEnd int64 = math.MaxInt64, 0
	for _, e := range entries {
		switch e.Status {
		case "ok":
			pr.Committed++
			lats = append(lats, e.LatencyUS)
			sum += float64(e.LatencyUS)
			pr.TypeCounts[e.Type]++
		case "abort":
			pr.Aborted++
		default:
			pr.Errors++
		}
		if e.StartUS < minStart {
			minStart = e.StartUS
		}
		if end := e.StartUS + e.LatencyUS; end > maxEnd {
			maxEnd = end
		}
	}
	if maxEnd > minStart {
		pr.Duration = time.Duration(maxEnd-minStart) * time.Microsecond
		pr.TPS = float64(pr.Committed) / pr.Duration.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pr.MeanUS = sum / float64(len(lats))
		pr.P50US = lats[len(lats)*50/100]
		pr.P95US = lats[len(lats)*95/100]
		pr.P99US = lats[len(lats)*99/100]
	}
	return pr
}

// JitterCV computes the coefficient of variation (stddev/mean) of a
// throughput series. Zero means a perfectly flat series.
func JitterCV(series []int) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += float64(v)
	}
	mean := sum / float64(len(series))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range series {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(series))) / mean
}

// Conformance compares a measured per-second series against a target rate:
// the mean relative deviation of seconds that should have been at target.
func Conformance(series []int, target float64) float64 {
	if len(series) == 0 || target <= 0 {
		return 0
	}
	var dev float64
	for _, v := range series {
		dev += math.Abs(float64(v)-target) / target
	}
	return dev / float64(len(series))
}

// RateSchedule reconstructs the committed-throughput curve of a recorded
// trace as one rate per window (Figure 1 shows trace.txt flowing back into
// the Workload Manager: a recorded run can be replayed as a rate profile
// against another system).
func RateSchedule(entries []Entry, window time.Duration) []float64 {
	if window <= 0 {
		window = time.Second
	}
	var maxIdx int64 = -1
	winUS := window.Microseconds()
	for _, e := range entries {
		if e.Status == "ok" && e.StartUS/winUS > maxIdx {
			maxIdx = e.StartUS / winUS
		}
	}
	if maxIdx < 0 {
		return nil
	}
	counts := make([]int, maxIdx+1)
	for _, e := range entries {
		if e.Status == "ok" {
			counts[e.StartUS/winUS]++
		}
	}
	rates := make([]float64, len(counts))
	for i, c := range counts {
		rates[i] = float64(c) / window.Seconds()
	}
	return rates
}
