// Package core implements the client-side benchmark driver of OLTP-Bench:
// the centralized Workload Manager with its request queue, precise rate
// control with uniform/exponential arrival interleaving, per-phase
// transaction mixtures that can be changed on the fly, worker threads that
// pull requests and execute transaction control code over driver
// connections, pause/resume, and multi-workload (multi-tenant) composition.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"benchpress/internal/dbdriver"
)

// Procedure is one transaction type of a benchmark: a name plus the control
// code (program logic with parameterized queries). The framework brackets Fn
// with Begin/Commit and rolls back on error; Fn must not commit itself.
type Procedure struct {
	// Name identifies the transaction type in statistics and traces.
	Name string
	// ReadOnly declares the transaction read-only (lets the serial engine
	// admit concurrent readers, as real engines optimize readonly txns).
	ReadOnly bool
	// Fn runs the transaction body on conn using rng for parameter
	// generation.
	Fn func(conn *dbdriver.Conn, rng *rand.Rand) error
}

// ErrExpectedAbort is returned by procedure control code for by-design
// rollbacks (e.g. TPC-C's 1% NewOrder aborts). The framework rolls back and
// counts the transaction as completed, matching the workload specification.
var ErrExpectedAbort = errors.New("core: transaction aborted by design")

// Benchmark is one workload ported to the testbed: schema, loader, and
// transaction set.
type Benchmark interface {
	// Name returns the benchmark identifier (e.g. "tpcc").
	Name() string
	// Procedures returns the transaction types, in mixture order.
	Procedures() []Procedure
	// DefaultMix returns the default mixture weights, parallel to
	// Procedures.
	DefaultMix() []float64
	// CreateSchema issues the DDL on conn.
	CreateSchema(conn *dbdriver.Conn) error
	// Load populates the database at the benchmark's configured scale.
	Load(db *dbdriver.DB, rng *rand.Rand) error
}

// Factory builds a benchmark instance at a scale factor.
type Factory func(scale float64) Benchmark

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterBenchmark installs a benchmark factory under its name. Benchmark
// packages call this from init.
func RegisterBenchmark(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[strings.ToLower(name)] = f
}

// NewBenchmark instantiates a registered benchmark.
func NewBenchmark(name string, scale float64) (Benchmark, error) {
	registryMu.RLock()
	f, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q (known: %s)",
			name, strings.Join(BenchmarkNames(), ", "))
	}
	return f(scale), nil
}

// BenchmarkNames lists registered benchmarks, sorted.
func BenchmarkNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resumer is an optional Benchmark extension. Benchmarks whose procedures
// carry allocator state derived from the loaded dataset (a next-insert key,
// a row-count-based chooser) implement Resume to re-derive that state when
// Prepare keeps a recovered dataset instead of reloading it.
type Resumer interface {
	Resume(db *dbdriver.DB) error
}

// Prepare creates the schema and loads the data for a benchmark on db.
//
// A disk-backed engine can come up holding a recovered image. When tables
// already exist Prepare keeps the schema instead of re-creating it, and when
// they also hold rows it keeps the dataset instead of reloading — reopening
// a -data-dir resumes where the last run left off. The recovered schema must
// belong to the same benchmark; a mismatch surfaces as a missing-table error
// from the workload. Remote instances always create and load: the schema
// lives in the server process and Prepare cannot inspect it.
func Prepare(b Benchmark, db *dbdriver.DB, seed int64) (err error) {
	conn := db.Connect()
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("core: close schema connection: %w", cerr)
		}
	}()
	if eng := db.Engine(); eng != nil && len(eng.Tables()) > 0 {
		if eng.RowCount() > 0 {
			if r, ok := b.(Resumer); ok {
				if err := r.Resume(db); err != nil {
					return fmt.Errorf("core: resume %s: %w", b.Name(), err)
				}
			}
			return nil
		}
		// Recovered (or truncated) schema with no surviving rows: reload
		// the dataset into the existing tables.
		if err := b.Load(db, rand.New(rand.NewSource(seed))); err != nil {
			return fmt.Errorf("core: load %s: %w", b.Name(), err)
		}
		return nil
	}
	if err := b.CreateSchema(conn); err != nil {
		return fmt.Errorf("core: create schema for %s: %w", b.Name(), err)
	}
	if err := b.Load(db, rand.New(rand.NewSource(seed))); err != nil {
		return fmt.Errorf("core: load %s: %w", b.Name(), err)
	}
	return nil
}
