package core

import (
	"testing"

	"benchpress/internal/dbdriver"
)

// resumingBench wraps stubBench with a core.Resumer implementation so the
// test can observe when Prepare re-derives allocator state from a recovered
// dataset.
type resumingBench struct {
	*stubBench
	resumed int
}

func (r *resumingBench) Resume(db *dbdriver.DB) error {
	r.resumed++
	return nil
}

// TestPrepareReopensRecoveredDataDir: Prepare on an engine that recovered a
// disk image must keep the existing schema and dataset instead of failing on
// CREATE TABLE (or silently reloading over live data), and after a
// truncate it must reload into the recovered schema without re-creating it.
func TestPrepareReopensRecoveredDataDir(t *testing.T) {
	dir := t.TempDir()
	p, err := dbdriver.Lookup("golock")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "golock-preparetest"
	p.DataDir = dir
	p.BufferPoolPages = 16
	dbdriver.Register(p)

	db, err := dbdriver.Open(p.Name)
	if err != nil {
		t.Fatal(err)
	}
	b := &resumingBench{stubBench: &stubBench{scale: 1}}
	if err := Prepare(b, db, 1); err != nil {
		t.Fatalf("Prepare on fresh data dir: %v", err)
	}
	if b.resumed != 0 {
		t.Fatalf("Resume called %d times on fresh Prepare, want 0", b.resumed)
	}
	// Mark a row so a reopened dataset is distinguishable from a reload.
	conn := db.Connect()
	if _, err := conn.Exec("UPDATE counters SET v = 7 WHERE k = ?", 3); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	db.Close()

	db2, err := dbdriver.Open(p.Name)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := Prepare(b, db2, 1); err != nil {
		t.Fatalf("Prepare on recovered data dir: %v", err)
	}
	if b.resumed != 1 {
		t.Fatalf("Resume called %d times on recovered Prepare, want 1", b.resumed)
	}
	conn2 := db2.Connect()
	defer conn2.Close()
	row, err := conn2.QueryRow("SELECT v FROM counters WHERE k = ?", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := row[0].String(); got != "7" {
		t.Fatalf("recovered row v = %s, want 7 (dataset was reloaded over recovered data)", got)
	}

	// Truncated-but-recovered schema: Prepare reloads the dataset without
	// attempting CREATE TABLE.
	if err := db2.Engine().TruncateAll(); err != nil {
		t.Fatal(err)
	}
	if err := Prepare(b, db2, 1); err != nil {
		t.Fatalf("Prepare after truncate: %v", err)
	}
	if b.resumed != 1 {
		t.Fatalf("Resume called %d times after truncate+reload, want 1 (reload re-derives state itself)", b.resumed)
	}
	if got := db2.Engine().RowCount(); got != 10 {
		t.Fatalf("rows after truncate+Prepare = %d, want 10", got)
	}
	row, err = conn2.QueryRow("SELECT v FROM counters WHERE k = ?", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := row[0].String(); got != "0" {
		t.Fatalf("reloaded row v = %s, want 0", got)
	}
}
