package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"benchpress/internal/dbdriver"
	"benchpress/internal/stats"
	"benchpress/internal/trace"
)

// Phase is one execution phase: a target rate, a transaction mixture, and a
// duration (the paper's Section 2.1 definition).
type Phase struct {
	// Duration is how long the phase runs.
	Duration time.Duration
	// Rate is the target transactions/second; 0 means unlimited (open
	// loop).
	Rate float64
	// Mix is the transaction mixture weights (parallel to the benchmark's
	// procedures); nil selects the benchmark default.
	Mix []float64
	// Exponential selects exponential arrival interleaving; false selects
	// uniform.
	Exponential bool
	// ThinkTime is an optional sleep after each transaction.
	ThinkTime time.Duration
}

// Options tunes a workload manager.
type Options struct {
	// Terminals is the number of worker threads (default 1).
	Terminals int
	// QueueCapacity bounds the request queue; excess arrivals are
	// postponed so that delivered throughput never exceeds the target
	// (default: one second of the highest phase rate, min 1024).
	QueueCapacity int
	// MaxRetries bounds transparent retries of concurrency aborts
	// (default 3).
	MaxRetries int
	// Trace, when set, receives one entry per transaction attempt.
	Trace *trace.Writer
	// Seed seeds worker RNGs (default 1).
	Seed int64
	// Name labels the workload (defaults to the benchmark name).
	Name string
}

// Manager is the centralized Workload Manager: it owns the request queue,
// generates arrivals at the target rate, and coordinates the workers.
type Manager struct {
	bench     Benchmark
	db        *dbdriver.DB
	opts      Options
	phases    []Phase
	procs     []Procedure
	collector *stats.Collector

	queue chan struct{}

	// Dynamic controls (written by the phase runner and the control API).
	rateBits    atomic.Uint64 // float64 bits; 0.0 = unlimited
	exponential atomic.Bool
	thinkNS     atomic.Int64
	mix         atomic.Pointer[mixTable]
	pauseGate   atomic.Pointer[chan struct{}]
	phaseIdx    atomic.Int32
	// arrival, when non-nil, is an installed open-loop arrival process that
	// overrides the closed-loop rate controls (see arrival.go).
	arrival atomic.Pointer[ArrivalSpec]
	// capture, when non-nil, receives every attempt (workload capture mode).
	capture atomic.Pointer[captureBox]

	requested atomic.Int64
	postponed atomic.Int64

	start time.Time
	// startNS mirrors start for readers outside the run's goroutines (the
	// API's status/arrival handlers); 0 until Run begins.
	startNS atomic.Int64
	started atomic.Bool
	done    chan struct{}

	// stop ends the run early when closed (the API's DELETE lifecycle).
	stop     chan struct{}
	stopOnce sync.Once
}

// mixTable is a sampled transaction mixture: cumulative weights.
type mixTable struct {
	weights []float64
	cum     []float64
	total   float64
}

func newMixTable(weights []float64) *mixTable {
	t := &mixTable{weights: append([]float64(nil), weights...)}
	t.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		t.total += w
		t.cum[i] = t.total
	}
	return t
}

// sample picks a type index from the mixture by binary search over the
// cumulative weights, so wide mixtures cost O(log n) per arrival instead of
// a linear scan.
func (t *mixTable) sample(rng *rand.Rand) int {
	if t.total <= 0 {
		return 0
	}
	r := rng.Float64() * t.total
	i := sort.SearchFloat64s(t.cum, r)
	// SearchFloat64s returns the first cum[i] >= r; equality means entry
	// i's mass is exhausted at r (a zero-weight entry, or an exact
	// boundary), which belongs to the next entry with positive weight.
	for i < len(t.cum)-1 && t.cum[i] <= r {
		i++
	}
	return i
}

// NewManager builds a workload manager for a prepared benchmark.
func NewManager(b Benchmark, db *dbdriver.DB, phases []Phase, opts Options) *Manager {
	if opts.Terminals <= 0 {
		opts.Terminals = 1
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Name == "" {
		opts.Name = b.Name()
	}
	if opts.QueueCapacity <= 0 {
		maxRate := 0.0
		for _, p := range phases {
			if p.Rate > maxRate {
				maxRate = p.Rate
			}
		}
		opts.QueueCapacity = int(maxRate)
		if opts.QueueCapacity < 1024 {
			opts.QueueCapacity = 1024
		}
	}
	procs := b.Procedures()
	names := make([]string, len(procs))
	for i, p := range procs {
		names[i] = p.Name
	}
	m := &Manager{
		bench:     b,
		db:        db,
		opts:      opts,
		phases:    phases,
		procs:     procs,
		collector: stats.NewCollector(names),
		queue:     make(chan struct{}, opts.QueueCapacity),
		done:      make(chan struct{}),
		stop:      make(chan struct{}),
	}
	m.mix.Store(newMixTable(b.DefaultMix()))
	m.phaseIdx.Store(-1)
	return m
}

// Name returns the workload label.
func (m *Manager) Name() string { return m.opts.Name }

// Benchmark returns the underlying benchmark.
func (m *Manager) Benchmark() Benchmark { return m.bench }

// Collector returns the statistics collector.
func (m *Manager) Collector() *stats.Collector { return m.collector }

// DB returns the target database.
func (m *Manager) DB() *dbdriver.DB { return m.db }

// SetRate throttles the target rate at runtime; tps <= 0 means unlimited.
func (m *Manager) SetRate(tps float64) {
	if tps < 0 || math.IsInf(tps, 0) || math.IsNaN(tps) {
		tps = 0
	}
	m.rateBits.Store(math.Float64bits(tps))
}

// Rate returns the current target rate (0 = unlimited).
func (m *Manager) Rate() float64 { return math.Float64frombits(m.rateBits.Load()) }

// SetMix replaces the transaction mixture at runtime. A nil mix restores the
// benchmark default. Extra weights are ignored; missing ones are zero.
func (m *Manager) SetMix(weights []float64) {
	if weights == nil {
		m.mix.Store(newMixTable(m.bench.DefaultMix()))
		return
	}
	padded := make([]float64, len(m.procs))
	copy(padded, weights)
	m.mix.Store(newMixTable(padded))
}

// Mix returns the current mixture weights.
func (m *Manager) Mix() []float64 {
	return append([]float64(nil), m.mix.Load().weights...)
}

// SetThinkTime adjusts the per-transaction think time at runtime.
func (m *Manager) SetThinkTime(d time.Duration) { m.thinkNS.Store(int64(d)) }

// SetExponentialArrivals toggles the arrival distribution at runtime.
func (m *Manager) SetExponentialArrivals(on bool) { m.exponential.Store(on) }

// Pause blocks workers and the arrival generator until Resume. Used by the
// game's mixture dialog ("OLTP-Bench temporarily blocks any thread from
// executing a transaction request").
func (m *Manager) Pause() {
	ch := make(chan struct{})
	if !m.pauseGate.CompareAndSwap(nil, &ch) {
		return // already paused
	}
}

// Resume releases a Pause.
func (m *Manager) Resume() {
	if ch := m.pauseGate.Swap(nil); ch != nil {
		close(*ch)
	}
}

// Paused reports whether the workload is paused.
func (m *Manager) Paused() bool { return m.pauseGate.Load() != nil }

// waitIfPaused blocks while the pause gate is closed.
func (m *Manager) waitIfPaused(ctx context.Context) {
	for {
		ch := m.pauseGate.Load()
		if ch == nil {
			return
		}
		select {
		case <-*ch:
		case <-ctx.Done():
			return
		}
	}
}

// PhaseIndex returns the running phase ordinal (-1 before start).
func (m *Manager) PhaseIndex() int { return int(m.phaseIdx.Load()) }

// AttemptObserver receives one notification per transaction attempt while
// capture mode is on. The entry carries the attempt's timing and outcome;
// args holds the raw arguments of the attempt's first statement on sampled
// attempts and is nil otherwise (args must not be retained or mutated).
// Implementations must be safe for concurrent calls from all workers.
type AttemptObserver interface {
	ObserveAttempt(e trace.Entry, args []any)
}

// captureBox pairs the observer with its parameter-sampling cadence.
type captureBox struct {
	obs AttemptObserver
	// every samples statement parameters on one attempt in every `every`
	// (1 = all attempts); timing/outcome is observed on every attempt.
	every int64
	n     atomic.Int64
}

// sampled reports whether this attempt's parameters should be captured.
func (b *captureBox) sampled() bool {
	if b.every <= 1 {
		return true
	}
	return b.n.Add(1)%b.every == 0
}

// SetCapture turns capture mode on: every attempt is reported to obs, with
// statement parameters sampled on one attempt in sampleEvery (min 1). A nil
// obs turns capture off. Capture can be toggled at any point of a run; the
// non-capturing hot path pays one atomic load per attempt.
func (m *Manager) SetCapture(obs AttemptObserver, sampleEvery int) {
	if obs == nil {
		m.capture.Store(nil)
		return
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	m.capture.Store(&captureBox{obs: obs, every: int64(sampleEvery)})
}

// Capturing reports whether capture mode is on.
func (m *Manager) Capturing() bool { return m.capture.Load() != nil }

// Stop ends the run early and gracefully: the phase runner skips its
// remaining phases, workers drain, and Run returns nil. Safe to call from
// any goroutine, multiple times, before or after Run. This is the lifecycle
// hook behind DELETE /api/v1/workloads/{name}.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// Stopping reports whether Stop has been requested.
func (m *Manager) Stopping() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of generated arrivals waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// QueueCapacity returns the request queue's capacity.
func (m *Manager) QueueCapacity() int { return cap(m.queue) }

// Postponed returns the number of arrivals shed because the queue was full
// (the workers could not keep up with the target rate).
func (m *Manager) Postponed() int64 { return m.postponed.Load() }

// Requested returns the number of generated arrivals.
func (m *Manager) Requested() int64 { return m.requested.Load() }

// applyPhase installs a phase's settings.
func (m *Manager) applyPhase(i int) {
	p := m.phases[i]
	m.SetRate(p.Rate)
	m.SetExponentialArrivals(p.Exponential)
	m.SetThinkTime(p.ThinkTime)
	if p.Mix != nil {
		m.SetMix(p.Mix)
	} else {
		m.SetMix(nil)
	}
	m.phaseIdx.Store(int32(i))
}

// Run executes all phases, blocking until they complete or ctx is
// cancelled. It may be called once.
func (m *Manager) Run(ctx context.Context) error {
	if !m.started.CompareAndSwap(false, true) {
		return errAlreadyStarted
	}
	defer close(m.done)
	m.start = time.Now()
	m.startNS.Store(m.start.UnixNano())
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.produce(runCtx)
	}()
	for w := 0; w < m.opts.Terminals; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m.work(runCtx, id)
		}(w)
	}

	// Phase runner.
	var err error
	stopped := false
	for i := range m.phases {
		m.applyPhase(i)
		select {
		case <-time.After(m.phases[i].Duration):
		case <-ctx.Done():
			err = ctx.Err()
		case <-m.stop:
			stopped = true
		}
		if err != nil || stopped {
			break
		}
	}
	cancel()
	wg.Wait()
	if m.opts.Trace != nil {
		if ferr := m.opts.Trace.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("core: flush trace: %w", ferr)
		}
	}
	return err
}

var errAlreadyStarted = errors.New("core: manager already started")

// Done is closed when Run returns.
func (m *Manager) Done() <-chan struct{} { return m.done }

// produce generates arrivals at the target rate and enqueues them,
// interleaving with uniform or exponential spacing. When the queue is full
// the arrival is postponed (counted, not queued), so delivered throughput
// never exceeds the target.
func (m *Manager) produce(ctx context.Context) {
	rng := rand.New(rand.NewSource(m.opts.Seed * 7919))
	next := time.Now()
	// One reusable timer paces every arrival; at thousands of arrivals per
	// second, a per-gap time.After would allocate a timer (and leak it
	// until expiry) for each one.
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	sleep := func(d time.Duration) bool {
		timer.Reset(d)
		select {
		case <-timer.C:
			return true
		case <-ctx.Done():
			return false
		}
	}
	for {
		if ctx.Err() != nil {
			return
		}
		// An installed open-loop process overrides the closed-loop controls:
		// its instantaneous rate is a deterministic function of elapsed run
		// time (Poisson/uniform/burst × diurnal shape × amplification).
		var rate float64
		var poisson bool
		if sp := m.arrival.Load(); sp != nil {
			rate = sp.RateAt(time.Since(m.start))
			poisson = sp.Process == ProcessPoisson
		} else {
			rate = m.Rate()
			poisson = m.exponential.Load()
		}
		if rate <= 0 || m.Paused() {
			// Unlimited phases bypass the queue entirely (workers run
			// closed-loop at full speed); while paused — or inside a burst
			// process's off window — no arrivals are generated.
			if !sleep(time.Millisecond) {
				return
			}
			next = time.Now()
			continue
		}
		var gap time.Duration
		if poisson {
			gap = time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		} else {
			gap = time.Duration(float64(time.Second) / rate)
		}
		next = next.Add(gap)
		now := time.Now()
		if wait := next.Sub(now); wait > 0 {
			if !sleep(wait) {
				return
			}
		} else if now.Sub(next) > time.Second {
			// Cap catch-up bursts at one second of backlog.
			next = now.Add(-time.Second)
		}
		m.requested.Add(1)
		select {
		case m.queue <- struct{}{}:
		default:
			m.postponed.Add(1)
		}
	}
}

// work is one worker thread: pull a request, sample the mixture, run the
// transaction control code, record the outcome, think, repeat.
func (m *Manager) work(ctx context.Context, id int) {
	conn := m.db.Connect()
	// Worker teardown has no error channel; a rollback failure on close
	// would have surfaced on the transaction's own Commit/Rollback first.
	defer func() { _ = conn.Close() }()
	rng := rand.New(rand.NewSource(m.opts.Seed + int64(id)*104729 + 13))
	// rec is this worker's shard handle into the collector: recording an
	// outcome through it is a few atomic adds on a private cache line, with
	// no collector-wide lock on the hot path.
	rec := m.collector.Recorder(id)
	// One reusable timer serves both waits of the loop: bounding how long a
	// worker blocks on the queue before re-reading the rate (so a live
	// switch to unlimited does not strand workers on an idle queue), and
	// pacing think time. Between uses its channel is always drained, so
	// Reset is safe.
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		if ctx.Err() != nil {
			return
		}
		m.waitIfPaused(ctx)
		if m.paced() {
			timer.Reset(50 * time.Millisecond)
			select {
			case <-m.queue:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				continue
			case <-ctx.Done():
				return
			}
			// A pause issued while we waited still gates execution.
			m.waitIfPaused(ctx)
		}
		if ctx.Err() != nil {
			return
		}
		typeIdx := m.mix.Load().sample(rng)
		m.execute(conn, rng, rec, typeIdx, id)
		if think := time.Duration(m.thinkNS.Load()); think > 0 {
			timer.Reset(think)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return
			}
		}
	}
}

// execute runs one transaction with retry-on-conflict, recording statistics
// (through the worker's shard handle), trace entries, and — in capture
// mode — the attempt observation with sampled statement parameters.
func (m *Manager) execute(conn *dbdriver.Conn, rng *rand.Rand, rec stats.Recorder, typeIdx, workerID int) {
	proc := &m.procs[typeIdx]
	box := m.capture.Load()
	var argVals []any
	if box != nil && box.sampled() {
		// Capture the first statement's arguments as this attempt's
		// parameter sample; the copy outlives the procedure's scratch.
		conn.SetArgObserver(func(sql string, args []any) {
			if argVals == nil && len(args) > 0 {
				argVals = append([]any(nil), args...)
			}
		})
		defer conn.SetArgObserver(nil)
	}
	start := time.Now()
	var status stats.Status
	for attempt := 0; ; attempt++ {
		err := m.runOnce(conn, rng, proc)
		switch {
		case err == nil:
			status = stats.StatusOK
		case errors.Is(err, ErrExpectedAbort):
			// By-design rollback: completed per the workload spec.
			status = stats.StatusOK
		case dbdriver.IsRetryable(err) && attempt < m.opts.MaxRetries:
			rec.Record(typeIdx, stats.StatusRetry, 0)
			// Randomized exponential backoff prevents the lockstep
			// livelock of first-updater-wins engines (two conflicting
			// transactions re-colliding forever at full speed).
			backoff := time.Duration(100<<uint(attempt)) * time.Microsecond
			time.Sleep(time.Duration(rng.Int63n(int64(backoff) + 1)))
			continue
		case dbdriver.IsRetryable(err):
			status = stats.StatusAborted
		default:
			status = stats.StatusError
		}
		break
	}
	latency := time.Since(start)
	rec.Record(typeIdx, status, latency)
	if m.opts.Trace != nil || box != nil {
		st := "ok"
		switch status {
		case stats.StatusAborted:
			st = "abort"
		case stats.StatusError:
			st = "error"
		}
		e := trace.Entry{
			StartUS:   start.Sub(m.start).Microseconds(),
			LatencyUS: latency.Microseconds(),
			Type:      proc.Name,
			Phase:     m.PhaseIndex(),
			Status:    st,
			Worker:    workerID,
		}
		if argVals != nil {
			e.Params = trace.FormatParams(argVals)
		}
		if m.opts.Trace != nil {
			m.opts.Trace.Add(e)
		}
		if box != nil {
			box.obs.ObserveAttempt(e, argVals)
		}
	}
}

// runOnce brackets one attempt of the procedure with Begin/Commit/Rollback.
func (m *Manager) runOnce(conn *dbdriver.Conn, rng *rand.Rand, proc *Procedure) error {
	var beginErr error
	if proc.ReadOnly {
		beginErr = conn.BeginReadOnly()
	} else {
		beginErr = conn.Begin()
	}
	if beginErr != nil {
		return beginErr
	}
	if err := proc.Fn(conn, rng); err != nil {
		// The procedure's error decides retry classification; a rollback
		// failure would surface on the worker's next Begin anyway.
		_ = conn.Rollback()
		return err
	}
	return conn.Commit()
}

// Status is the manager's dynamic state exposed through the control API.
type Status struct {
	Name      string
	Benchmark string
	DBMS      string
	Phase     int
	Rate      float64
	Unlimited bool
	Mix       []float64
	Paused    bool
	Stopped   bool
	Postponed int64
	// Arrival is the installed arrival process (Process "closed" when the
	// manager runs its legacy closed-loop pacing) and EffectiveRate its
	// instantaneous target.
	Arrival       ArrivalSpec
	EffectiveRate float64
	Capturing     bool
	Snapshot      stats.Snapshot
}

// Status reports the manager's instantaneous state.
func (m *Manager) Status() Status {
	rate := m.Rate()
	return Status{
		Name:          m.opts.Name,
		Benchmark:     m.bench.Name(),
		DBMS:          m.db.Personality().Name,
		Phase:         m.PhaseIndex(),
		Rate:          rate,
		Unlimited:     rate <= 0 && m.arrival.Load() == nil,
		Mix:           m.Mix(),
		Paused:        m.Paused(),
		Stopped:       m.Stopping(),
		Postponed:     m.Postponed(),
		Arrival:       m.Arrival(),
		EffectiveRate: m.EffectiveRate(),
		Capturing:     m.Capturing(),
		Snapshot:      m.collector.Snapshot(),
	}
}

// RunAll executes several workload managers concurrently (multi-tenancy),
// returning the first error.
func RunAll(ctx context.Context, managers ...*Manager) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(managers))
	for _, m := range managers {
		wg.Add(1)
		go func(m *Manager) {
			defer wg.Done()
			if err := m.Run(ctx); err != nil && err != context.Canceled && err != context.DeadlineExceeded {
				errs <- err
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// PhasesFromRates converts a recorded per-window rate schedule (see
// trace.RateSchedule) into executable phases, replaying a captured load
// curve against another target - the trace.txt replay path of the paper's
// Figure 1. A nil mix applies the benchmark default in every phase.
func PhasesFromRates(rates []float64, window time.Duration, mix []float64) []Phase {
	if window <= 0 {
		window = time.Second
	}
	phases := make([]Phase, len(rates))
	for i, r := range rates {
		phases[i] = Phase{Duration: window, Rate: r, Mix: mix}
	}
	return phases
}
