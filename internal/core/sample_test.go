package core

import (
	"math/rand"
	"testing"
)

// linearSample is the pre-binary-search reference implementation of
// mixTable.sample: first cumulative weight strictly above r.
func linearSample(t *mixTable, r float64) int {
	for i, c := range t.cum {
		if r < c {
			return i
		}
	}
	return len(t.cum) - 1
}

// TestMixSampleMatchesLinearReference drives the binary-search sample and the
// old linear scan with identical random draws (twin RNGs) over random weight
// vectors, including zero and negative weights, and requires bit-identical
// picks.
func TestMixSampleMatchesLinearReference(t *testing.T) {
	seedRNG := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + seedRNG.Intn(12)
		weights := make([]float64, n)
		for i := range weights {
			switch seedRNG.Intn(4) {
			case 0:
				weights[i] = 0
			case 1:
				weights[i] = -1 // clamped to 0 by newMixTable
			default:
				weights[i] = seedRNG.Float64() * 10
			}
		}
		mt := newMixTable(weights)
		if mt.total <= 0 {
			if got := mt.sample(seedRNG); got != 0 {
				t.Fatalf("trial %d: zero-total mixture sampled %d, want 0", trial, got)
			}
			continue
		}
		seed := seedRNG.Int63()
		a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			got := mt.sample(a)
			want := linearSample(mt, b.Float64()*mt.total)
			if got != want {
				t.Fatalf("trial %d draw %d: sample = %d, linear reference = %d (weights %v)", trial, i, got, want, weights)
			}
		}
	}
}

// TestMixSampleZeroWeights checks entries with zero weight are never picked,
// even at the exact cumulative boundaries where SearchFloat64s lands on the
// exhausted entry.
func TestMixSampleZeroWeights(t *testing.T) {
	mt := newMixTable([]float64{0, 3, 0, 0, 1, 0})
	rng := rand.New(rand.NewSource(99))
	counts := make([]int, 6)
	for i := 0; i < 20000; i++ {
		counts[mt.sample(rng)]++
	}
	for _, i := range []int{0, 2, 3, 5} {
		if counts[i] != 0 {
			t.Fatalf("zero-weight entry %d sampled %d times (counts %v)", i, counts[i], counts)
		}
	}
	if counts[1] == 0 || counts[4] == 0 {
		t.Fatalf("positive-weight entries starved: %v", counts)
	}
	// 3:1 ratio, loosely.
	ratio := float64(counts[1]) / float64(counts[4])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

// TestMixSampleDegenerate covers the all-zero and empty mixtures.
func TestMixSampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := newMixTable([]float64{0, 0}).sample(rng); got != 0 {
		t.Fatalf("all-zero mixture sampled %d, want 0", got)
	}
	if got := newMixTable(nil).sample(rng); got != 0 {
		t.Fatalf("empty mixture sampled %d, want 0", got)
	}
}

// BenchmarkMixSample measures sampling cost over a wide mixture, where the
// binary search replaces a linear scan of the cumulative weights.
func BenchmarkMixSample(b *testing.B) {
	weights := make([]float64, 64)
	for i := range weights {
		weights[i] = float64(i%7) + 0.5
	}
	mt := newMixTable(weights)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += mt.sample(rng)
	}
	_ = sink
}
