package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"benchpress/internal/dbdriver"
	"benchpress/internal/trace"
)

func TestArrivalSpecNormalize(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		sp := ArrivalSpec{Process: ProcessPoisson, BaseRate: 100}
		if err := sp.Normalize(); err != nil {
			t.Fatal(err)
		}
		if sp.Multiplier != 1 || sp.Shape != ShapeFlat {
			t.Fatalf("defaults not filled: %+v", sp)
		}
	})
	t.Run("burst mean preserving", func(t *testing.T) {
		sp := ArrivalSpec{Process: ProcessBurst, BaseRate: 100,
			BurstOn: time.Second, BurstOff: 3 * time.Second}
		if err := sp.Normalize(); err != nil {
			t.Fatal(err)
		}
		// Factor (on+off)/on = 4 keeps the sustained mean at BaseRate.
		if sp.BurstFactor != 4 {
			t.Fatalf("burst factor = %v, want 4", sp.BurstFactor)
		}
	})
	t.Run("closed alias", func(t *testing.T) {
		sp := ArrivalSpec{}
		if err := sp.Normalize(); err != nil {
			t.Fatal(err)
		}
		if sp.Process != ProcessClosed || sp.open() {
			t.Fatalf("zero spec should normalize closed: %+v", sp)
		}
	})
	for _, bad := range []ArrivalSpec{
		{Process: "warp", BaseRate: 1},
		{Process: ProcessPoisson}, // no rate
		{Process: ProcessPoisson, BaseRate: -5},
		{Process: ProcessPoisson, BaseRate: 10, Multiplier: -1},
		{Process: ProcessPoisson, BaseRate: 10, Skew: 1.5},
		{Process: ProcessPoisson, BaseRate: 10, Shape: "square"},
		{Process: ProcessPoisson, BaseRate: 10, Shape: ShapeDiurnal, ShapeAmplitude: 2},
		{Process: ProcessBurst, BaseRate: 10, BurstFactor: 0.5},
	} {
		sp := bad
		if err := sp.Normalize(); err == nil {
			t.Errorf("spec %+v normalized without error", bad)
		}
	}
}

func TestArrivalRateAt(t *testing.T) {
	flat := ArrivalSpec{Process: ProcessPoisson, BaseRate: 100, Multiplier: 10}
	if err := flat.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := flat.RateAt(5 * time.Second); got != 1000 {
		t.Fatalf("flat rate = %v, want 1000", got)
	}

	diurnal := ArrivalSpec{Process: ProcessUniform, BaseRate: 100,
		Shape: ShapeDiurnal, ShapePeriod: 40 * time.Second, ShapeAmplitude: 0.5}
	if err := diurnal.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Peak at period/4 (sin=1), trough at 3*period/4 (sin=-1).
	if got := diurnal.RateAt(10 * time.Second); math.Abs(got-150) > 1e-6 {
		t.Fatalf("diurnal peak = %v, want 150", got)
	}
	if got := diurnal.RateAt(30 * time.Second); math.Abs(got-50) > 1e-6 {
		t.Fatalf("diurnal trough = %v, want 50", got)
	}

	burst := ArrivalSpec{Process: ProcessBurst, BaseRate: 100,
		BurstOn: time.Second, BurstOff: 3 * time.Second}
	if err := burst.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := burst.RateAt(500 * time.Millisecond); got != 400 {
		t.Fatalf("in-burst rate = %v, want 400", got)
	}
	if got := burst.RateAt(2 * time.Second); got != 0 {
		t.Fatalf("off-window rate = %v, want 0", got)
	}
	// Next cycle's on window.
	if got := burst.RateAt(4500 * time.Millisecond); got != 400 {
		t.Fatalf("second-cycle rate = %v, want 400", got)
	}

	closed := ArrivalSpec{Process: ProcessClosed}
	if got := closed.RateAt(time.Second); got != 0 {
		t.Fatalf("closed RateAt = %v", got)
	}
}

// skewBench is a stubBench that records the skew dial.
type skewBench struct {
	stubBench
	skew float64
	mu   sync.Mutex
}

func (b *skewBench) SetSkew(s float64) {
	b.mu.Lock()
	b.skew = s
	b.mu.Unlock()
}

func TestSetArrivalSkewDial(t *testing.T) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// A benchmark without the dial rejects skew > 0 but accepts skew 0.
	plain := &stubBench{}
	if err := Prepare(plain, db, 1); err != nil {
		t.Fatal(err)
	}
	m := NewManager(plain, db, []Phase{{Duration: time.Second}}, Options{})
	if err := m.SetArrival(ArrivalSpec{Process: ProcessPoisson, BaseRate: 10, Skew: 0.5}); err == nil {
		t.Fatal("skew accepted by a non-Skewable benchmark")
	}
	if err := m.SetArrival(ArrivalSpec{Process: ProcessPoisson, BaseRate: 10}); err != nil {
		t.Fatal(err)
	}
	if got := m.Arrival(); got.Process != ProcessPoisson || got.BaseRate != 10 {
		t.Fatalf("arrival = %+v", got)
	}

	// A Skewable benchmark has the dial forwarded, including back to zero.
	sk := &skewBench{}
	m2 := NewManager(sk, db, []Phase{{Duration: time.Second}}, Options{})
	if err := m2.SetArrival(ArrivalSpec{Process: ProcessPoisson, BaseRate: 10, Skew: 0.3}); err != nil {
		t.Fatal(err)
	}
	if sk.skew != 0.3 {
		t.Fatalf("skew = %v, want 0.3", sk.skew)
	}
	if err := m2.SetArrival(ArrivalSpec{}); err != nil {
		t.Fatal(err)
	}
	if sk.skew != 0 {
		t.Fatalf("skew not reset: %v", sk.skew)
	}
	// Removing the spec restores closed-loop reporting.
	if got := m2.Arrival(); got.Process != ProcessClosed {
		t.Fatalf("arrival after reset = %+v", got)
	}
}

func TestOpenLoopPoissonRate(t *testing.T) {
	const target = 200.0
	// The phase itself is unlimited; the installed arrival process governs.
	m, _ := newStubWorkload(t, []Phase{{Duration: 1500 * time.Millisecond, Rate: 0}}, Options{Terminals: 4})
	if err := m.SetArrival(ArrivalSpec{Process: ProcessPoisson, BaseRate: target}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := float64(m.Collector().Committed()) / 1.5
	if got < target*0.80 || got > target*1.10 {
		t.Fatalf("measured %.1f tps, open-loop target %.1f", got, target)
	}
}

func TestArrivalAmplification(t *testing.T) {
	// Multiplier ×4 over a 50/s base must deliver ~200/s.
	m, _ := newStubWorkload(t, []Phase{{Duration: time.Second, Rate: 0}}, Options{Terminals: 4})
	if err := m.SetArrival(ArrivalSpec{Process: ProcessUniform, BaseRate: 50, Multiplier: 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := float64(m.Collector().Committed())
	if got < 200*0.80 || got > 200*1.10 {
		t.Fatalf("amplified throughput %.0f, want ~200", got)
	}
}

func TestArrivalLiveSwitch(t *testing.T) {
	// Start closed-loop at 400/s, switch mid-run to a burst process sitting
	// in its off window: arrivals must stop almost immediately.
	m, _ := newStubWorkload(t, []Phase{{Duration: 900 * time.Millisecond, Rate: 400}}, Options{Terminals: 2})
	var atSwitch, after int64
	switched := make(chan struct{})
	go func() {
		defer close(switched)
		time.Sleep(300 * time.Millisecond)
		// BurstOn larger than the remaining run keeps RateAt in the on
		// window; flip BurstOn/Off so we land in silence instead.
		if err := m.SetArrival(ArrivalSpec{Process: ProcessBurst, BaseRate: 400,
			BurstOn: time.Nanosecond, BurstOff: time.Hour, BurstFactor: 1}); err != nil {
			t.Error(err)
			return
		}
		time.Sleep(50 * time.Millisecond) // drain in-flight queue entries
		atSwitch = m.Collector().Committed()
		time.Sleep(400 * time.Millisecond)
		after = m.Collector().Committed()
	}()
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-switched
	if atSwitch == 0 {
		t.Fatal("no progress before the switch")
	}
	if after-atSwitch > 10 {
		t.Fatalf("burst off window still committed %d", after-atSwitch)
	}
	st := m.Status()
	if st.Arrival.Process != ProcessBurst || st.EffectiveRate != 0 {
		t.Fatalf("status arrival = %+v effective = %v", st.Arrival, st.EffectiveRate)
	}
}

// captureSink collects ObserveAttempt calls for capture-path tests.
type captureSink struct {
	mu      sync.Mutex
	entries []trace.Entry
	sampled int
}

func (c *captureSink) ObserveAttempt(e trace.Entry, args []any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, e)
	if args != nil {
		c.sampled++
	}
}

func TestCaptureObserver(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 400 * time.Millisecond, Rate: 300}}, Options{Terminals: 2})
	sink := &captureSink{}
	m.SetCapture(sink, 1) // sample every attempt
	if !m.Capturing() {
		t.Fatal("Capturing() = false")
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.entries) == 0 {
		t.Fatal("no attempts observed")
	}
	if int64(len(sink.entries)) != m.Collector().Committed()+m.Collector().Aborted()+m.Collector().Errors() {
		t.Fatalf("observed %d, outcomes %d", len(sink.entries), m.Collector().Committed())
	}
	// Both stub procedures bind one ?-parameter, so every sampled attempt
	// carries args and a digest.
	if sink.sampled != len(sink.entries) {
		t.Fatalf("sampled %d of %d at every=1", sink.sampled, len(sink.entries))
	}
	for _, e := range sink.entries[:3] {
		if e.Params == "" {
			t.Fatalf("entry %+v has no param digest", e)
		}
	}
}

func TestCaptureSampling(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 400 * time.Millisecond, Rate: 300}}, Options{Terminals: 2})
	sink := &captureSink{}
	m.SetCapture(sink, 10)
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.SetCapture(nil, 0)
	if m.Capturing() {
		t.Fatal("Capturing() = true after detach")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	n, s := len(sink.entries), sink.sampled
	if n == 0 || s == 0 {
		t.Fatalf("entries=%d sampled=%d", n, s)
	}
	// 1-in-10 sampling: allow wide slack for worker interleave.
	if s > n/5 {
		t.Fatalf("sampled %d of %d at every=10", s, n)
	}
}

// benchExecute measures the worker hot path (execute: retry loop, stats
// shard record, trace/capture branches) against a benchmark whose
// procedures do no database work, isolating the framework overhead that the
// open-loop additions must keep within the bench gate.
func benchExecute(b *testing.B, arrival bool) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sb := &nopBench{}
	if err := Prepare(sb, db, 1); err != nil {
		b.Fatal(err)
	}
	m := NewManager(sb, db, []Phase{{Duration: time.Hour}}, Options{Terminals: 1})
	m.start = time.Now()
	m.startNS.Store(m.start.UnixNano())
	if arrival {
		if err := m.SetArrival(ArrivalSpec{Process: ProcessPoisson, BaseRate: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	conn := db.Connect()
	defer func() { _ = conn.Close() }()
	rng := rand.New(rand.NewSource(1))
	rec := m.collector.Recorder(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.execute(conn, rng, rec, 0, 0)
	}
}

// BenchmarkExecuteClosedLoop is the pre-existing worker hot path: no
// arrival spec, no capture.
func BenchmarkExecuteClosedLoop(b *testing.B) { benchExecute(b, false) }

// BenchmarkExecuteOpenLoop is the same path with an open-loop arrival spec
// installed; bench.sh holds its ns/op within 5% of the closed-loop case.
func BenchmarkExecuteOpenLoop(b *testing.B) { benchExecute(b, true) }

// nopBench has a single no-op procedure, so the benchmarks above time the
// framework, not the storage engine.
type nopBench struct{}

func (nopBench) Name() string { return "nop" }
func (nopBench) Procedures() []Procedure {
	return []Procedure{{Name: "Nop", Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error { return nil }}}
}
func (nopBench) DefaultMix() []float64                      { return []float64{100} }
func (nopBench) CreateSchema(conn *dbdriver.Conn) error     { return nil }
func (nopBench) Load(db *dbdriver.DB, rng *rand.Rand) error { return nil }
