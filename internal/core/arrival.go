package core

import (
	"fmt"
	"math"
	"time"
)

// Arrival process kinds. The zero value ("", alias "closed") keeps the
// manager's original closed-loop pacing: SetRate + the uniform/exponential
// toggle. The open-loop kinds generate arrivals from an explicit process
// whose instantaneous rate is a deterministic function of elapsed time, so
// a synthesized workload can express Poisson traffic, on/off bursts, and
// diurnal shapes that closed-loop workers cannot.
const (
	// ProcessClosed is the legacy closed-loop pacing (SetRate governs).
	ProcessClosed = "closed"
	// ProcessUniform spaces arrivals evenly at the effective rate.
	ProcessUniform = "uniform"
	// ProcessPoisson draws exponential inter-arrival gaps (open-loop
	// Poisson process) at the effective rate.
	ProcessPoisson = "poisson"
	// ProcessBurst alternates BurstOn windows at BurstFactor times the
	// effective rate with BurstOff windows of silence.
	ProcessBurst = "burst"
)

// Arrival shapes modulating the effective rate over time.
const (
	// ShapeFlat applies no modulation.
	ShapeFlat = "flat"
	// ShapeDiurnal multiplies the rate by 1 + Amplitude*sin(2πt/Period),
	// floored at zero — a compressed day/night load curve.
	ShapeDiurnal = "diurnal"
)

// ArrivalSpec is the live arrival-process control surface: everything the
// synthesizer dials on a running workload. All fields combine
// multiplicatively into the effective rate; see RateAt.
type ArrivalSpec struct {
	// Process selects the arrival process kind (Process* constants).
	Process string
	// BaseRate is the pre-amplification arrival rate in arrivals/second
	// (typically a captured profile's observed rate).
	BaseRate float64
	// Multiplier amplifies BaseRate ("×N users"); 0 defaults to 1.
	Multiplier float64
	// Shape modulates the rate over time (Shape* constants; "" = flat).
	Shape string
	// ShapePeriod is the diurnal period (default 60s).
	ShapePeriod time.Duration
	// ShapeAmplitude is the diurnal swing in [0,1].
	ShapeAmplitude float64
	// BurstOn/BurstOff set the burst duty cycle (defaults 1s/3s).
	BurstOn  time.Duration
	BurstOff time.Duration
	// BurstFactor multiplies the rate inside a burst window; 0 derives the
	// mean-preserving factor (BurstOn+BurstOff)/BurstOn, so the sustained
	// rate still averages BaseRate*Multiplier.
	BurstFactor float64
	// Skew is the hot-key dial in [0,1]: the fraction of transactions a
	// Skewable benchmark re-parameterizes from a small hot seed pool.
	Skew float64
}

// Skewable is implemented by benchmarks whose parameter generation honors
// the hot-key skew dial (the synthetic benchmark wraps any source benchmark
// this way). SetSkew must be safe to call concurrently with running
// procedures.
type Skewable interface {
	SetSkew(skew float64)
}

// Normalize validates the spec and fills defaulted fields in place.
func (sp *ArrivalSpec) Normalize() error {
	switch sp.Process {
	case "", ProcessClosed:
		sp.Process = ProcessClosed
	case ProcessUniform, ProcessPoisson, ProcessBurst:
		if sp.BaseRate <= 0 || math.IsInf(sp.BaseRate, 0) || math.IsNaN(sp.BaseRate) {
			return fmt.Errorf("core: arrival base rate must be positive, got %v", sp.BaseRate)
		}
	default:
		return fmt.Errorf("core: unknown arrival process %q (want closed|uniform|poisson|burst)", sp.Process)
	}
	if sp.Multiplier < 0 || math.IsInf(sp.Multiplier, 0) || math.IsNaN(sp.Multiplier) {
		return fmt.Errorf("core: arrival multiplier must be non-negative, got %v", sp.Multiplier)
	}
	if sp.Multiplier == 0 {
		sp.Multiplier = 1
	}
	switch sp.Shape {
	case "", ShapeFlat:
		sp.Shape = ShapeFlat
	case ShapeDiurnal:
		if sp.ShapeAmplitude < 0 || sp.ShapeAmplitude > 1 {
			return fmt.Errorf("core: shape amplitude must be in [0,1], got %v", sp.ShapeAmplitude)
		}
		if sp.ShapePeriod <= 0 {
			sp.ShapePeriod = time.Minute
		}
	default:
		return fmt.Errorf("core: unknown arrival shape %q (want flat|diurnal)", sp.Shape)
	}
	if sp.Skew < 0 || sp.Skew > 1 || math.IsNaN(sp.Skew) {
		return fmt.Errorf("core: skew must be in [0,1], got %v", sp.Skew)
	}
	if sp.Process == ProcessBurst {
		if sp.BurstOn <= 0 {
			sp.BurstOn = time.Second
		}
		if sp.BurstOff <= 0 {
			sp.BurstOff = 3 * time.Second
		}
		if sp.BurstFactor == 0 {
			sp.BurstFactor = float64(sp.BurstOn+sp.BurstOff) / float64(sp.BurstOn)
		}
		if sp.BurstFactor < 1 {
			return fmt.Errorf("core: burst factor must be >= 1, got %v", sp.BurstFactor)
		}
	}
	return nil
}

// RateAt returns the effective arrival rate after elapsed run time:
// BaseRate × Multiplier, modulated by the diurnal shape, and — for the
// burst process — zero inside off windows and BurstFactor-scaled inside on
// windows. Deterministic, so the producer, the status surface, and tests
// all agree on the instantaneous target.
func (sp *ArrivalSpec) RateAt(elapsed time.Duration) float64 {
	if sp.Process == ProcessClosed {
		return 0
	}
	r := sp.BaseRate * sp.Multiplier
	if sp.Shape == ShapeDiurnal {
		r *= 1 + sp.ShapeAmplitude*math.Sin(2*math.Pi*elapsed.Seconds()/sp.ShapePeriod.Seconds())
		if r < 0 {
			r = 0
		}
	}
	if sp.Process == ProcessBurst {
		cycle := sp.BurstOn + sp.BurstOff
		if elapsed%cycle >= sp.BurstOn {
			return 0
		}
		r *= sp.BurstFactor
	}
	return r
}

// open reports whether the spec selects an open-loop process.
func (sp *ArrivalSpec) open() bool { return sp.Process != ProcessClosed }

// SetArrival installs (or, with a closed/zero spec, removes) the open-loop
// arrival process at runtime. The spec is validated and defaulted via
// Normalize; the skew dial is forwarded to the benchmark when it implements
// Skewable. While an open-loop spec is installed it overrides SetRate and
// the uniform/exponential toggle.
func (m *Manager) SetArrival(spec ArrivalSpec) error {
	if err := spec.Normalize(); err != nil {
		return err
	}
	if sk, ok := m.bench.(Skewable); ok {
		sk.SetSkew(spec.Skew)
	} else if spec.Skew > 0 {
		return fmt.Errorf("core: benchmark %s does not support the hot-key skew dial", m.bench.Name())
	}
	if spec.open() {
		m.arrival.Store(&spec)
	} else {
		m.arrival.Store(nil)
	}
	return nil
}

// Arrival returns the installed arrival spec; a closed-loop manager reports
// Process "closed" with the current SetRate target as BaseRate.
func (m *Manager) Arrival() ArrivalSpec {
	if sp := m.arrival.Load(); sp != nil {
		return *sp
	}
	return ArrivalSpec{Process: ProcessClosed, BaseRate: m.Rate(), Multiplier: 1, Shape: ShapeFlat}
}

// EffectiveRate returns the instantaneous arrival-rate target: the
// open-loop process evaluated at the current elapsed time, or the
// closed-loop SetRate value.
func (m *Manager) EffectiveRate() float64 {
	if sp := m.arrival.Load(); sp != nil {
		return sp.RateAt(m.elapsed())
	}
	return m.Rate()
}

// elapsed returns time since Run started (zero before the run). It reads
// the atomic mirror of the start time, so API goroutines may call it
// concurrently with Run starting up.
func (m *Manager) elapsed() time.Duration {
	ns := m.startNS.Load()
	if ns == 0 {
		return 0
	}
	return time.Since(time.Unix(0, ns))
}

// paced reports whether workers must pull paced arrivals from the queue
// (either a closed-loop rate limit or an open-loop process is active).
func (m *Manager) paced() bool {
	return m.arrival.Load() != nil || m.Rate() > 0
}
