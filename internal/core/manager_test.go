package core

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"benchpress/internal/dbdriver"
	"benchpress/internal/trace"
)

// stubBench is a minimal benchmark for framework tests: two txn types over
// one counter table.
type stubBench struct {
	scale    float64
	runCount [2]atomic.Int64
	delay    time.Duration
	failNth  atomic.Int64 // every Nth read call returns a retryable-ish error
}

func (b *stubBench) Name() string { return "stub" }

func (b *stubBench) Procedures() []Procedure {
	return []Procedure{
		{Name: "Read", ReadOnly: true, Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error {
			b.runCount[0].Add(1)
			if b.delay > 0 {
				time.Sleep(b.delay)
			}
			_, err := conn.QueryRow("SELECT v FROM counters WHERE k = ?", rng.Intn(10))
			return err
		}},
		{Name: "Write", Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error {
			b.runCount[1].Add(1)
			if b.delay > 0 {
				time.Sleep(b.delay)
			}
			_, err := conn.Exec("UPDATE counters SET v = v + 1 WHERE k = ?", rng.Intn(10))
			return err
		}},
	}
}

func (b *stubBench) DefaultMix() []float64 { return []float64{50, 50} }

func (b *stubBench) CreateSchema(conn *dbdriver.Conn) error {
	_, err := conn.Exec("CREATE TABLE counters (k INT NOT NULL, v INT, PRIMARY KEY (k))")
	return err
}

func (b *stubBench) Load(db *dbdriver.DB, rng *rand.Rand) error {
	conn := db.Connect()
	defer conn.Close()
	for i := 0; i < 10; i++ {
		if _, err := conn.Exec("INSERT INTO counters (k, v) VALUES (?, 0)", i); err != nil {
			return err
		}
	}
	return nil
}

func newStubWorkload(t *testing.T, phases []Phase, opts Options) (*Manager, *stubBench) {
	t.Helper()
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	b := &stubBench{scale: 1}
	if err := Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	return NewManager(b, db, phases, opts), b
}

func TestRateControlAccuracy(t *testing.T) {
	const target = 200.0
	m, _ := newStubWorkload(t, []Phase{{Duration: 1500 * time.Millisecond, Rate: target}}, Options{Terminals: 4})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	committed := m.Collector().Committed()
	elapsed := 1.5
	got := float64(committed) / elapsed
	if got < target*0.85 || got > target*1.05 {
		t.Fatalf("measured %.1f tps, target %.1f", got, target)
	}
}

func TestNeverExceedsTarget(t *testing.T) {
	// Slow workers, generous queue: delivered rate must stay at or below
	// target even though workers could burst later.
	m, b := newStubWorkload(t, []Phase{{Duration: time.Second, Rate: 50}}, Options{Terminals: 2})
	b.delay = time.Millisecond
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.Collector().Committed(); float64(got) > 50*1.1+5 {
		t.Fatalf("delivered %d txns in 1s at target 50", got)
	}
}

func TestPostponementWhenSaturated(t *testing.T) {
	// One worker with 20ms/txn can do ~50 tps; ask for 2000 with a tiny
	// queue: most arrivals must be postponed, never silently executed late.
	m, b := newStubWorkload(t, []Phase{{Duration: time.Second, Rate: 2000}},
		Options{Terminals: 1, QueueCapacity: 10})
	b.delay = 20 * time.Millisecond
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Postponed() == 0 {
		t.Fatal("expected postponed arrivals under saturation")
	}
	if m.Collector().Committed() > 100 {
		t.Fatalf("committed %d, expected far fewer than requested", m.Collector().Committed())
	}
}

func TestMixtureControl(t *testing.T) {
	m, b := newStubWorkload(t, []Phase{{Duration: 700 * time.Millisecond, Rate: 0, Mix: []float64{100, 0}}},
		Options{Terminals: 2})
	go func() {
		time.Sleep(350 * time.Millisecond)
		m.SetMix([]float64{0, 100}) // flip read-only -> write-only mid-phase
	}()
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	reads, writes := b.runCount[0].Load(), b.runCount[1].Load()
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d; both halves should have run", reads, writes)
	}
	// The mixture snapshot must reflect the override.
	mix := m.Mix()
	if mix[0] != 0 || mix[1] != 100 {
		t.Fatalf("mix = %v", mix)
	}
}

func TestDefaultMixRestored(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{
		{Duration: 50 * time.Millisecond, Rate: 100, Mix: []float64{100, 0}},
		{Duration: 50 * time.Millisecond, Rate: 100}, // nil mix = default
	}, Options{})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mix := m.Mix()
	if mix[0] != 50 || mix[1] != 50 {
		t.Fatalf("default mix not restored: %v", mix)
	}
}

func TestPauseResume(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 900 * time.Millisecond, Rate: 500}}, Options{Terminals: 2})
	var beforePause, afterPause atomic.Int64
	go func() {
		time.Sleep(200 * time.Millisecond)
		m.Pause()
		beforePause.Store(m.Collector().Committed())
		time.Sleep(300 * time.Millisecond)
		afterPause.Store(m.Collector().Committed())
		m.Resume()
	}()
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !paused(beforePause.Load(), afterPause.Load()) {
		t.Fatalf("throughput during pause: before=%d after=%d", beforePause.Load(), afterPause.Load())
	}
	if m.Collector().Committed() <= afterPause.Load() {
		t.Fatal("no progress after resume")
	}
}

// paused tolerates a few in-flight transactions finishing after Pause.
func paused(before, after int64) bool { return after-before <= 5 }

func TestPhaseTransitions(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{
		{Duration: 200 * time.Millisecond, Rate: 100},
		{Duration: 200 * time.Millisecond, Rate: 400},
	}, Options{Terminals: 2})
	var phase0 atomic.Int64
	go func() {
		time.Sleep(190 * time.Millisecond)
		phase0.Store(m.Collector().Committed())
	}()
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	total := m.Collector().Committed()
	phase1 := total - phase0.Load()
	if phase0.Load() == 0 || phase1 == 0 {
		t.Fatalf("phase0=%d phase1=%d", phase0.Load(), phase1)
	}
	// Phase 2 at 4x the rate should commit noticeably more.
	if float64(phase1) < float64(phase0.Load())*1.5 {
		t.Fatalf("phase throughput did not scale: phase0=%d phase1=%d", phase0.Load(), phase1)
	}
	if m.PhaseIndex() != 1 {
		t.Fatalf("final phase index = %d", m.PhaseIndex())
	}
}

func TestUnlimitedOpenLoop(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 300 * time.Millisecond, Rate: 0}}, Options{Terminals: 4})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Open loop on an in-memory engine should vastly exceed any queue-fed
	// rate we'd configure; the floor is a sanity check that the queue is
	// bypassed, deliberately loose so CPU contention from parallel test
	// packages cannot flake it.
	if got := m.Collector().Committed(); got < 500 {
		t.Fatalf("open loop committed only %d", got)
	}
	if !m.Status().Unlimited {
		t.Fatal("status should report unlimited")
	}
}

func TestContextCancellation(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: time.Hour, Rate: 100}}, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation took too long")
	}
}

func TestRunOnlyOnce(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 10 * time.Millisecond, Rate: 10}}, Options{})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestTraceIntegration(t *testing.T) {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	m, _ := newStubWorkload(t, []Phase{{Duration: 200 * time.Millisecond, Rate: 200}},
		Options{Terminals: 2, Trace: tw})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(entries)) != m.Collector().Committed()+m.Collector().Aborted()+m.Collector().Errors() {
		t.Fatalf("trace entries %d vs outcomes %d", len(entries), m.Collector().Committed())
	}
	rep := trace.Analyze(entries)
	if rep.Committed == 0 || len(rep.Phases) == 0 {
		t.Fatal("trace analysis empty")
	}
}

func TestManagerStop(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: time.Hour, Rate: 200}}, Options{Terminals: 2})
	errc := make(chan error, 1)
	go func() { errc <- m.Run(context.Background()) }()
	time.Sleep(100 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("stopped run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if !m.Stopping() {
		t.Fatal("Stopping() = false after Stop")
	}
	select {
	case <-m.Done():
	default:
		t.Fatal("Done not closed after stopped Run")
	}
}

func TestStopBeforeRun(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: time.Hour, Rate: 100}}, Options{})
	m.Stop()
	done := make(chan error, 1)
	go func() { done <- m.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pre-stopped Run did not return promptly")
	}
}

// TestCollectorPercentilesMatchTrace is the observability acceptance check:
// the live per-type percentile digests served by the API must agree with the
// exact percentiles internal/trace computes from the same run's trace file.
func TestCollectorPercentilesMatchTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	m, _ := newStubWorkload(t, []Phase{{Duration: 700 * time.Millisecond, Rate: 400}},
		Options{Terminals: 4, Trace: tw})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Exact per-type percentiles from the trace.
	byType := map[string][]int64{}
	for _, e := range entries {
		if e.Status == "ok" {
			byType[e.Type] = append(byType[e.Type], e.LatencyUS)
		}
	}
	snap := m.Collector().Snapshot()
	within := func(got time.Duration, wantUS int64) bool {
		g := float64(got.Microseconds())
		w := float64(wantUS)
		// 10% relative tolerance with a small absolute floor: at
		// microsecond-scale latencies one log-bucket of width dominates.
		tol := 0.10*w + 100
		return math.Abs(g-w) <= tol
	}
	for i, name := range snap.TypeNames {
		lats := byType[name]
		if len(lats) < 20 {
			t.Fatalf("type %s: only %d samples", name, len(lats))
		}
		sortInt64s(lats)
		ts := snap.TypeLat[i]
		if ts.Count != int64(len(lats)) {
			t.Fatalf("type %s: collector count %d vs trace %d", name, ts.Count, len(lats))
		}
		for _, pc := range []struct {
			p   int
			got time.Duration
		}{{50, ts.P50}, {95, ts.P95}, {99, ts.P99}} {
			want := lats[len(lats)*pc.p/100]
			if !within(pc.got, want) {
				t.Errorf("type %s p%d: collector %v vs trace %dus", name, pc.p, pc.got, want)
			}
		}
	}
}

func sortInt64s(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func TestMultiTenantRunAll(t *testing.T) {
	db, err := dbdriver.Open("gomvcc")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	b1 := &stubBench{}
	if err := Prepare(b1, db, 1); err != nil {
		t.Fatal(err)
	}
	b2 := &stubBench{}
	// Second tenant shares the same database instance and tables.
	m1 := NewManager(b1, db, []Phase{{Duration: 200 * time.Millisecond, Rate: 100}}, Options{Name: "tenant-a"})
	m2 := NewManager(b2, db, []Phase{{Duration: 200 * time.Millisecond, Rate: 100}}, Options{Name: "tenant-b"})
	if err := RunAll(context.Background(), m1, m2); err != nil {
		t.Fatal(err)
	}
	if m1.Collector().Committed() == 0 || m2.Collector().Committed() == 0 {
		t.Fatal("both tenants should make progress")
	}
}

func TestExpectedAbortCountsAsCompleted(t *testing.T) {
	db, _ := dbdriver.Open("gomvcc")
	defer db.Close()
	b := &abortBench{}
	if err := Prepare(b, db, 1); err != nil {
		t.Fatal(err)
	}
	m := NewManager(b, db, []Phase{{Duration: 100 * time.Millisecond, Rate: 100}}, Options{})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Collector().Committed() == 0 {
		t.Fatal("expected aborts should count as completed")
	}
	if m.Collector().Errors() != 0 {
		t.Fatalf("errors = %d", m.Collector().Errors())
	}
}

type abortBench struct{}

func (b *abortBench) Name() string { return "aborter" }
func (b *abortBench) Procedures() []Procedure {
	return []Procedure{{Name: "AlwaysAbort", Fn: func(conn *dbdriver.Conn, rng *rand.Rand) error {
		return ErrExpectedAbort
	}}}
}
func (b *abortBench) DefaultMix() []float64                  { return []float64{100} }
func (b *abortBench) CreateSchema(conn *dbdriver.Conn) error { return nil }
func (b *abortBench) Load(db *dbdriver.DB, rng *rand.Rand) error {
	return nil
}

func TestMixTableSampling(t *testing.T) {
	mt := newMixTable([]float64{80, 20})
	rng := rand.New(rand.NewSource(7))
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[mt.sample(rng)]++
	}
	frac := float64(counts[0]) / 10000
	if math.Abs(frac-0.8) > 0.03 {
		t.Fatalf("sampled fraction %.3f, want ~0.8", frac)
	}
}

func TestRegisterAndNewBenchmark(t *testing.T) {
	RegisterBenchmark("stub-test", func(scale float64) Benchmark { return &stubBench{scale: scale} })
	b, err := NewBenchmark("STUB-TEST", 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.(*stubBench).scale != 2 {
		t.Fatal("scale not threaded")
	}
	if _, err := NewBenchmark("nope", 1); err == nil {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestStatusFields(t *testing.T) {
	m, _ := newStubWorkload(t, []Phase{{Duration: 150 * time.Millisecond, Rate: 123}}, Options{Name: "w1"})
	go m.Run(context.Background())
	time.Sleep(60 * time.Millisecond)
	st := m.Status()
	if st.Name != "w1" || st.Benchmark != "stub" || st.DBMS != "gomvcc" {
		t.Fatalf("status identity = %+v", st)
	}
	if st.Rate != 123 || st.Unlimited || st.Paused {
		t.Fatalf("status controls = %+v", st)
	}
	<-m.Done()
}

func TestRatedToUnlimitedTransition(t *testing.T) {
	// Workers blocked on the queue during a rated phase must wake up and
	// run open-loop when the next phase is unlimited.
	m, _ := newStubWorkload(t, []Phase{
		{Duration: 200 * time.Millisecond, Rate: 20}, // slow: workers mostly idle on the queue
		{Duration: 300 * time.Millisecond, Rate: 0},  // unlimited
	}, Options{Terminals: 4})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The unlimited phase alone should commit far more than the rated
	// phase's ~4 transactions; a stranded worker pool would stay near zero.
	if got := m.Collector().Committed(); got < 200 {
		t.Fatalf("committed %d; workers appear stranded after the rate switch", got)
	}
}
