package game

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"benchpress/internal/stats"
)

// Backend abstracts the benchmark side of the game: the game writes target
// rates and reads delivered throughput. core.Manager satisfies it through
// the ManagerBackend adapter; tests use deterministic fakes.
type Backend interface {
	// SetRate requests a target throughput (the jump/fall output).
	SetRate(tps float64)
	// MeasuredTPS returns the delivered throughput the character's height
	// follows ("the character only responds to the actual throughput
	// delivered by the DBMS").
	MeasuredTPS() float64
	// Halt stops the benchmark and resets the database (game over).
	Halt()
}

// LatencyReporter is optionally implemented by backends that can digest the
// run's committed latency; the game attaches the digest to its Result so
// score feedback reflects responsiveness, not just throughput corridors.
type LatencyReporter interface {
	LatencySummary() stats.LatencySummary
}

// Controls is the player's dynamic input state.
type Controls struct {
	jump atomic.Uint64 // pending jump amount (float64 bits), consumed per tick
}

// Jump requests a throughput increase of delta tps, applied next tick.
// Multiple jumps within a tick accumulate.
func (c *Controls) Jump(delta float64) {
	for {
		old := c.jump.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.jump.CompareAndSwap(old, next) {
			return
		}
	}
}

// take consumes the accumulated jump amount.
func (c *Controls) take() float64 {
	return math.Float64frombits(c.jump.Swap(0))
}

// Pending returns the accumulated jump amount the next tick will consume.
// The autopilot uses it to avoid stacking corrections faster than the game
// consumes them.
func (c *Controls) Pending() float64 {
	return math.Float64frombits(c.jump.Load())
}

// Config tunes the game physics.
type Config struct {
	// Gravity is the linear target-rate decay in tps per second while not
	// jumping ("the throughput automatically decreases linearly until
	// reaching 0").
	Gravity float64
	// MaxRate caps the requested rate (the top of the screen).
	MaxRate float64
	// Grace is the number of leading ticks without collision checks, letting
	// the measured-throughput window warm up.
	Grace int
	// OnTick, when set, observes every tick record as it happens (the web
	// UI streams these to the browser).
	OnTick func(TickRecord)
}

// TickRecord is one tick of the game trajectory.
type TickRecord struct {
	Index     int
	Target    float64 // rate requested from the workload manager
	Measured  float64 // delivered throughput (character height)
	Lo, Hi    float64 // corridor at this tick
	Obstacle  bool
	AutoPilot bool
	Crashed   bool
}

// Result is the outcome of one game run.
type Result struct {
	CourseName string
	Survived   bool
	CrashedAt  int // tick index of the crash (-1 if survived)
	Score      int // ticks passed through obstacles
	Trajectory []TickRecord
	// Latency digests the run's committed latency when the backend
	// implements LatencyReporter (zero-valued otherwise).
	Latency stats.LatencySummary
}

// Game is one run of a course against a backend.
type Game struct {
	course   *Course
	backend  Backend
	controls *Controls
	cfg      Config
	// targetBits holds the requested rate as float64 bits; atomic because
	// the autopilot reads it from its own goroutine.
	targetBits atomic.Uint64
}

// Target returns the currently requested rate.
func (g *Game) Target() float64 { return math.Float64frombits(g.targetBits.Load()) }

func (g *Game) setTarget(v float64) { g.targetBits.Store(math.Float64bits(v)) }

// New builds a game. Zero config fields get playable defaults.
func New(course *Course, backend Backend, controls *Controls, cfg Config) *Game {
	if cfg.Gravity <= 0 {
		cfg.Gravity = 200
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 1e6
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 4
	}
	if controls == nil {
		controls = &Controls{}
	}
	return &Game{course: course, backend: backend, controls: controls, cfg: cfg}
}

// Controls returns the player input handle.
func (g *Game) Controls() *Controls { return g.controls }

// Run plays the course in real time, ticking at the course tick. It returns
// when the course ends, the character crashes, or ctx is cancelled.
func (g *Game) Run(ctx context.Context) (res Result) {
	ticker := time.NewTicker(g.course.Tick)
	defer ticker.Stop()
	if lr, ok := g.backend.(LatencyReporter); ok {
		defer func() { res.Latency = lr.LatencySummary() }()
	}
	res = Result{CourseName: g.course.Name, CrashedAt: -1}
	// Start the character at the first corridor midpoint so the opening is
	// reachable.
	if len(g.course.Points) > 0 && g.course.Points[0].Obstacle {
		g.setTarget(g.course.Points[0].Target)
	}
	g.backend.SetRate(g.Target())
	for i, pt := range g.course.Points {
		select {
		case <-ctx.Done():
			res.Survived = true // aborted, not crashed
			return res
		case <-ticker.C:
		}
		rec := g.step(i, pt)
		res.Trajectory = append(res.Trajectory, rec)
		if g.cfg.OnTick != nil {
			g.cfg.OnTick(rec)
		}
		if rec.Obstacle && !rec.Crashed {
			res.Score++
		}
		if rec.Crashed {
			res.CrashedAt = i
			g.backend.Halt() // "halt the benchmark and reset the database"
			return res
		}
	}
	res.Survived = true
	return res
}

// step advances one tick: consume input (unless auto-pilot), apply gravity,
// command the rate, observe the delivered throughput, and check collision.
func (g *Game) step(i int, pt Point) TickRecord {
	tickSec := g.course.Tick.Seconds()
	target := g.Target()
	if !pt.AutoPilot {
		if jump := g.controls.take(); jump > 0 {
			target += jump
		} else {
			target -= g.cfg.Gravity * tickSec
		}
	} else {
		// Tunnel zones ignore input; gravity is suspended so the zone
		// tests the DBMS's steadiness at the rate set on entry.
		g.controls.take()
	}
	if target < 0 {
		target = 0
	}
	if target > g.cfg.MaxRate {
		target = g.cfg.MaxRate
	}
	g.setTarget(target)
	g.backend.SetRate(target)

	measured := g.backend.MeasuredTPS()
	rec := TickRecord{
		Index: i, Target: target, Measured: measured,
		Lo: pt.Lo, Hi: pt.Hi, Obstacle: pt.Obstacle, AutoPilot: pt.AutoPilot,
	}
	if pt.Obstacle && i >= g.cfg.Grace {
		if measured < pt.Lo || measured > pt.Hi {
			rec.Crashed = true
		}
	}
	return rec
}

// EnterTunnel pre-sets the target on tunnel entry (the autopilot and the UI
// both call this when the character reaches a tunnel zone boundary).
func (g *Game) EnterTunnel(target float64) {
	g.setTarget(target)
	g.backend.SetRate(target)
}
