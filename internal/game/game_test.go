package game

import (
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a deterministic engine model: measured throughput follows
// the requested rate up to a capacity ceiling, with first-order lag.
type fakeBackend struct {
	capacity float64
	lag      float64 // 0..1, fraction of the gap closed per SetRate
	rate     atomic.Uint64
	measured atomic.Uint64
	halted   atomic.Bool
}

func newFakeBackend(capacity, lag float64) *fakeBackend {
	return &fakeBackend{capacity: capacity, lag: lag}
}

func (f *fakeBackend) SetRate(tps float64) {
	f.rate.Store(math.Float64bits(tps))
	want := tps
	if want > f.capacity {
		want = f.capacity
	}
	cur := math.Float64frombits(f.measured.Load())
	next := cur + (want-cur)*f.lag
	f.measured.Store(math.Float64bits(next))
}

func (f *fakeBackend) MeasuredTPS() float64 { return math.Float64frombits(f.measured.Load()) }
func (f *fakeBackend) Halt()                { f.halted.Store(true) }

// fastCourse shrinks ticks so game tests run in milliseconds.
const testTick = 2 * time.Millisecond

func TestCourseGenerators(t *testing.T) {
	steps := Steps("s", 100, 100, 3, 10*testTick, 50, testTick)
	if len(steps.Points) != 30 {
		t.Fatalf("steps points = %d", len(steps.Points))
	}
	if steps.Points[0].Target != 100 || steps.Points[29].Target != 300 {
		t.Fatalf("steps targets: %v %v", steps.Points[0].Target, steps.Points[29].Target)
	}
	sin := Sinusoidal("sin", 500, 200, 20*testTick, 40*testTick, 100, testTick)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, p := range sin.Points {
		lo = math.Min(lo, p.Target)
		hi = math.Max(hi, p.Target)
	}
	if lo > 320 || hi < 680 {
		t.Fatalf("sinusoid range [%v, %v]", lo, hi)
	}
	peak := Peak("p", 100, 900, 10*testTick, 8*testTick, 20*testTick, 50, testTick)
	if len(peak.Points) != 38 {
		t.Fatalf("peak points = %d", len(peak.Points))
	}
	// Up-transition gap: indices 10..12 open; the down-transition after the
	// tall spike gets the longer glide gap: indices 18..29 open.
	if peak.Points[2].Target != 100 || peak.Points[14].Target != 900 || peak.Points[31].Target != 100 {
		t.Fatal("peak shape wrong")
	}
	if peak.Points[11].Obstacle || peak.Points[13].Obstacle == false {
		t.Fatal("up-transition gap wrong")
	}
	if peak.Points[19].Obstacle || peak.Points[29].Obstacle || !peak.Points[30].Obstacle {
		t.Fatal("down-transition glide gap wrong")
	}
	tun := Tunnel("t", 400, 80, 20*testTick, testTick)
	for _, p := range tun.Points {
		if !p.AutoPilot || p.Lo != 360 || p.Hi != 440 {
			t.Fatalf("tunnel point %+v", p)
		}
	}
	if tun.Duration() != 20*testTick {
		t.Fatalf("duration = %v", tun.Duration())
	}
}

func TestConcatRejectsMismatchedTicks(t *testing.T) {
	a := Tunnel("a", 100, 10, 10*testTick, testTick)
	b := Tunnel("b", 100, 10, 10*testTick, 2*testTick)
	if _, err := Concat("ab", a, b); err == nil {
		t.Fatal("mismatched ticks accepted")
	}
	c, err := Concat("aa", a, a)
	if err != nil || len(c.Points) != 20 {
		t.Fatalf("concat: %v %d", err, len(c.Points))
	}
}

func TestLoadCourse(t *testing.T) {
	src := `{
		"name": "custom",
		"tick_ms": 2,
		"segments": [
			{"shape": "steps", "base": 100, "step": 50, "n_steps": 2, "per_step_sec": 0.02, "width": 40},
			{"shape": "tunnel", "target": 200, "width": 40, "duration_sec": 0.02},
			{"shape": "sinusoidal", "mid": 150, "amplitude": 50, "period_sec": 0.02, "duration_sec": 0.02, "width": 40},
			{"shape": "peak", "base": 100, "peak": 300, "lead_sec": 0.01, "spike_sec": 0.005, "tail_sec": 0.01, "width": 40}
		]
	}`
	c, err := LoadCourse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "custom" || len(c.Points) == 0 {
		t.Fatalf("%+v", c)
	}
	if _, err := LoadCourse(strings.NewReader(`{"segments":[{"shape":"warp","width":1}]}`)); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if _, err := LoadCourse(strings.NewReader(`{"segments":[{"shape":"tunnel"}]}`)); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestAutopilotSurvivesEasyCourse(t *testing.T) {
	course := Steps("easy", 200, 100, 4, 15*testTick, 400, testTick)
	backend := newFakeBackend(10000, 0.8) // plenty of capacity, quick response
	g := New(course, backend, nil, Config{Gravity: 500})
	res := NewAutopilot(g).Play(context.Background())
	if !res.Survived {
		t.Fatalf("crashed at tick %d: %+v", res.CrashedAt, res.Trajectory[res.CrashedAt])
	}
	if res.Score == 0 {
		t.Fatal("no score accumulated")
	}
	if backend.halted.Load() {
		t.Fatal("backend halted despite surviving")
	}
}

func TestCrashWhenCapacityTooLow(t *testing.T) {
	// The course demands 800 tps; the engine caps at 300: the character
	// cannot reach the corridor and must crash into the obstacle.
	course := Steps("hard", 800, 0, 10, 20*testTick, 100, testTick)
	backend := newFakeBackend(300, 0.9)
	g := New(course, backend, nil, Config{Gravity: 100, Grace: 3})
	res := NewAutopilot(g).Play(context.Background())
	if res.Survived {
		t.Fatal("survived an impossible course")
	}
	if !backend.halted.Load() {
		t.Fatal("crash must halt the benchmark")
	}
	if res.CrashedAt < 3 {
		t.Fatalf("crash during grace period: %d", res.CrashedAt)
	}
}

func TestGravityPullsDown(t *testing.T) {
	// No input at all: the target must decay linearly to zero.
	course := Steps("fall", 1000, 0, 1, 50*testTick, 1e9, testTick) // huge corridor: no crash
	backend := newFakeBackend(10000, 1.0)
	g := New(course, backend, &Controls{}, Config{Gravity: 100000})
	res := g.Run(context.Background())
	if !res.Survived {
		t.Fatal("crashed in a giant corridor")
	}
	last := res.Trajectory[len(res.Trajectory)-1]
	if last.Target != 0 {
		t.Fatalf("gravity did not reach zero: %v", last.Target)
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i].Target > res.Trajectory[i-1].Target {
			t.Fatal("target increased without a jump")
		}
	}
}

func TestJumpRaisesTarget(t *testing.T) {
	course := Steps("jump", 100, 0, 1, 30*testTick, 1e9, testTick)
	backend := newFakeBackend(10000, 1.0)
	ctl := &Controls{}
	g := New(course, backend, ctl, Config{Gravity: 10})
	go func() {
		time.Sleep(10 * testTick)
		ctl.Jump(500)
	}()
	res := g.Run(context.Background())
	maxT := 0.0
	for _, r := range res.Trajectory {
		maxT = math.Max(maxT, r.Target)
	}
	if maxT < 400 {
		t.Fatalf("jump had no effect: max target %v", maxT)
	}
}

func TestTunnelIgnoresInput(t *testing.T) {
	course := Tunnel("tun", 300, 1e9, 30*testTick, testTick)
	backend := newFakeBackend(10000, 1.0)
	ctl := &Controls{}
	g := New(course, backend, ctl, Config{})
	g.EnterTunnel(300)
	go func() {
		for i := 0; i < 20; i++ {
			ctl.Jump(1000) // must be ignored inside the tunnel
			time.Sleep(testTick)
		}
	}()
	res := g.Run(context.Background())
	for _, r := range res.Trajectory {
		if r.Target != 300 {
			t.Fatalf("tunnel target drifted to %v", r.Target)
		}
	}
	if !res.Survived {
		t.Fatal("crashed in a wide tunnel")
	}
}

func TestControlsAccumulate(t *testing.T) {
	c := &Controls{}
	c.Jump(10)
	c.Jump(15)
	if got := c.take(); got != 25 {
		t.Fatalf("take = %v", got)
	}
	if got := c.take(); got != 0 {
		t.Fatalf("second take = %v", got)
	}
}

func TestContextCancelEndsRun(t *testing.T) {
	course := Tunnel("long", 100, 1e9, time.Hour, testTick)
	backend := newFakeBackend(1000, 1.0)
	g := New(course, backend, nil, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*testTick)
	defer cancel()
	start := time.Now()
	g.Run(ctx)
	if time.Since(start) > time.Second {
		t.Fatal("cancellation ignored")
	}
}
