// Package game implements BenchPress, the demonstration game of the paper's
// Section 4: a side-scrolling obstacle course where the character's height
// is the measured throughput of the target DBMS. The player (or an
// autopilot) requests target rates ("jumps"); gravity decays the target
// linearly toward zero; obstacles are throughput corridors the measured rate
// must pass through; auto-pilot tunnel zones ignore player input entirely.
package game

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Tick is the default game tick duration.
const Tick = 250 * time.Millisecond

// Point is the course state at one tick: the allowed throughput corridor and
// whether the zone is an auto-pilot tunnel.
type Point struct {
	// Lo and Hi bound the permitted measured throughput. An open point has
	// Lo = 0 and Hi = +Inf (no obstacle at this position).
	Lo, Hi float64
	// Obstacle marks whether a collision check applies at this point.
	Obstacle bool
	// AutoPilot marks tunnel zones where player input is ignored.
	AutoPilot bool
	// Target is the corridor midpoint (convenience for controllers/plots).
	Target float64
}

// Course is a sequence of points sampled at the tick interval.
type Course struct {
	Name   string
	Tick   time.Duration
	Points []Point
}

// Duration returns the course's wall-clock length.
func (c *Course) Duration() time.Duration {
	return time.Duration(len(c.Points)) * c.Tick
}

// open returns a non-obstacle point.
func open() Point { return Point{Lo: 0, Hi: math.Inf(1)} }

// corridor returns an obstacle point with the given bounds.
func corridor(lo, hi float64, autopilot bool) Point {
	return Point{Lo: lo, Hi: hi, Obstacle: true, AutoPilot: autopilot, Target: (lo + hi) / 2}
}

// ticksFor converts a duration to a tick count (at least 1).
func ticksFor(d, tick time.Duration) int {
	n := int(d / tick)
	if n < 1 {
		n = 1
	}
	return n
}

// transitionGapTicks is the open space between obstacles at level changes
// (like the gap between pipe pairs): it gives the measured-throughput
// window, which lags by its length, time to catch up with the new target
// before collisions are judged again.
const transitionGapTicks = 3

// Steps builds the paper's "Steps" challenge: a staircase of increasing (or
// decreasing, with negative step) throughput levels, simulating a load ramp
// that eventually saturates the DBMS. Each level change is preceded by open
// space, as between the game's pipe pairs.
func Steps(name string, base, step float64, nSteps int, perStep time.Duration, width float64, tick time.Duration) *Course {
	c := &Course{Name: name, Tick: tick}
	for s := 0; s < nSteps; s++ {
		level := base + float64(s)*step
		if level < 0 {
			level = 0
		}
		n := ticksFor(perStep, tick)
		for i := 0; i < n; i++ {
			if s > 0 && i < transitionGapTicks {
				c.Points = append(c.Points, open())
				continue
			}
			c.Points = append(c.Points, corridor(level-width/2, level+width/2, false))
		}
	}
	return c
}

// Sinusoidal builds the paper's "Sinusoidal" challenge: the corridor moves
// up and down in a recurring pattern, testing graceful response to
// fluctuating load without jitter.
func Sinusoidal(name string, mid, amplitude float64, period, duration time.Duration, width float64, tick time.Duration) *Course {
	c := &Course{Name: name, Tick: tick}
	n := ticksFor(duration, tick)
	for i := 0; i < n; i++ {
		t := float64(i) * tick.Seconds()
		level := mid + amplitude*math.Sin(2*math.Pi*t/period.Seconds())
		c.Points = append(c.Points, corridor(level-width/2, level+width/2, false))
	}
	return c
}

// Peak builds the paper's "Peak" challenge: steady-state baseline, a sudden
// short peak, then back to baseline, testing response to sporadic load.
func Peak(name string, baseline, peak float64, lead, spike, tail time.Duration, width float64, tick time.Duration) *Course {
	c := &Course{Name: name, Tick: tick}
	first := true
	prev := 0.0
	add := func(level float64, d time.Duration) {
		// Downward transitions need a longer gap: the character descends
		// only by gravity (the paper's "simulated gravity" rule), so the
		// open space after a tall obstacle must cover the glide down plus
		// the measurement window's lag.
		gap := transitionGapTicks
		if !first && level < prev {
			gap = transitionGapTicks * 4
		}
		n := ticksFor(d, tick)
		for i := 0; i < n; i++ {
			if !first && i < gap && i < n {
				c.Points = append(c.Points, open())
				continue
			}
			c.Points = append(c.Points, corridor(level-width/2, level+width/2, false))
		}
		first = false
		prev = level
	}
	add(baseline, lead)
	add(peak, spike)
	add(baseline, tail)
	return c
}

// Tunnel builds the paper's "Tunnels" challenge: a long auto-pilot zone with
// a tight constant corridor that the DBMS must hold without oscillating;
// player input is disabled inside.
func Tunnel(name string, target, width float64, duration time.Duration, tick time.Duration) *Course {
	c := &Course{Name: name, Tick: tick}
	n := ticksFor(duration, tick)
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, corridor(target-width/2, target+width/2, true))
	}
	return c
}

// Concat joins courses end to end under a new name.
func Concat(name string, parts ...*Course) (*Course, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("game: empty course")
	}
	out := &Course{Name: name, Tick: parts[0].Tick}
	for _, p := range parts {
		if p.Tick != out.Tick {
			return nil, fmt.Errorf("game: mismatched ticks in course parts")
		}
		out.Points = append(out.Points, p.Points...)
	}
	return out, nil
}

// courseConfig is the JSON course file format: new challenges can be created
// with a configuration file, as the paper notes.
type courseConfig struct {
	Name     string `json:"name"`
	TickMS   int    `json:"tick_ms"`
	Segments []struct {
		Shape    string  `json:"shape"` // steps | sinusoidal | peak | tunnel
		Base     float64 `json:"base"`
		Step     float64 `json:"step"`
		NSteps   int     `json:"n_steps"`
		PerStepS float64 `json:"per_step_sec"`
		Mid      float64 `json:"mid"`
		Amp      float64 `json:"amplitude"`
		PeriodS  float64 `json:"period_sec"`
		Peak     float64 `json:"peak"`
		LeadS    float64 `json:"lead_sec"`
		SpikeS   float64 `json:"spike_sec"`
		TailS    float64 `json:"tail_sec"`
		Target   float64 `json:"target"`
		Width    float64 `json:"width"`
		DurS     float64 `json:"duration_sec"`
	} `json:"segments"`
}

// LoadCourse parses a JSON course configuration.
func LoadCourse(r io.Reader) (*Course, error) {
	var cfg courseConfig
	if err := json.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("game: %w", err)
	}
	tick := Tick
	if cfg.TickMS > 0 {
		tick = time.Duration(cfg.TickMS) * time.Millisecond
	}
	secs := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	var parts []*Course
	for i, seg := range cfg.Segments {
		width := seg.Width
		if width <= 0 {
			return nil, fmt.Errorf("game: segment %d: width must be positive", i+1)
		}
		switch seg.Shape {
		case "steps":
			parts = append(parts, Steps(cfg.Name, seg.Base, seg.Step, seg.NSteps, secs(seg.PerStepS), width, tick))
		case "sinusoidal":
			parts = append(parts, Sinusoidal(cfg.Name, seg.Mid, seg.Amp, secs(seg.PeriodS), secs(seg.DurS), width, tick))
		case "peak":
			parts = append(parts, Peak(cfg.Name, seg.Base, seg.Peak, secs(seg.LeadS), secs(seg.SpikeS), secs(seg.TailS), width, tick))
		case "tunnel":
			parts = append(parts, Tunnel(cfg.Name, seg.Target, width, secs(seg.DurS), tick))
		default:
			return nil, fmt.Errorf("game: segment %d: unknown shape %q", i+1, seg.Shape)
		}
	}
	return Concat(cfg.Name, parts...)
}
