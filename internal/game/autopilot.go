package game

import (
	"context"
	"time"
)

// Autopilot is a machine player: it looks one corridor ahead and issues
// jumps so that the requested rate tracks the corridor midpoint. It makes
// every course playable headlessly, which is how the experiments reproduce
// the challenge shapes without a human.
type Autopilot struct {
	game *Game
	// Aggressiveness scales how hard the autopilot corrects (1.0 default).
	Aggressiveness float64
}

// NewAutopilot attaches an autopilot to a game.
func NewAutopilot(g *Game) *Autopilot {
	return &Autopilot{game: g, Aggressiveness: 1.0}
}

// Play runs the game while steering it. It blocks until the run ends.
func (a *Autopilot) Play(ctx context.Context) Result {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan Result, 1)
	go func() {
		done <- a.game.Run(runCtx)
	}()
	// Steer on a faster cadence than the game tick so that jumps land
	// before each collision check.
	steer := time.NewTicker(a.game.course.Tick / 2)
	defer steer.Stop()
	start := time.Now()
	for {
		select {
		case res := <-done:
			return res
		case <-ctx.Done():
			cancel()
			return <-done
		case <-steer.C:
			a.steer(time.Since(start))
		}
	}
}

// steer compares the current target with the upcoming corridor midpoint and
// jumps when below it. Falling is left to gravity. The lookahead matches the
// course's transition gaps so climbs toward a higher corridor start inside
// the open space, where the lagging throughput window can catch up before
// the next collision check.
func (a *Autopilot) steer(elapsed time.Duration) {
	// The game processes point i on the (i+1)-th ticker fire, i.e. at
	// elapsed (i+1)*Tick; the next point to be judged at elapsed e is
	// therefore index e/Tick, and `base` is the one before it.
	base := int(elapsed/a.game.course.Tick) - 1
	points := a.game.course.Points
	at := func(i int) Point {
		if i >= len(points) {
			i = len(points) - 1
		}
		if i < 0 {
			i = 0
		}
		return points[i]
	}
	// While an obstacle is immediately ahead, track it alone: pre-climbing
	// toward a later, higher corridor would fly the character out the top
	// of the current one. Inside open space, scan across the gap so the
	// climb starts where collisions are not judged.
	var pt Point
	if next := at(base + 1); next.Obstacle {
		pt = next
	} else {
		for look := 2; look <= transitionGapTicks+1; look++ {
			if cand := at(base + look); cand.Obstacle {
				pt = cand
				break
			}
		}
	}
	if !pt.Obstacle {
		return // only open space ahead
	}
	if pt.AutoPilot {
		// Tunnel entry: set the rate once; inside, input is ignored anyway.
		a.game.EnterTunnel(pt.Target)
		return
	}
	if a.game.Controls().Pending() > 0 {
		return // a correction is already queued for the next tick
	}
	current := a.game.Target()
	if current < pt.Target {
		a.game.Controls().Jump((pt.Target - current) * a.Aggressiveness)
	}
	// Above target: let gravity bring the character down.
}
