package game

import (
	"context"
	"sync"
)

// TwoPlayer runs two games concurrently, one per player, each against its
// own workload — typically two workloads sharing one database instance, so
// that "the players experience in real-time the effects of multi-tenancy,
// with one player affecting the other" (the paper's §4.3). Either player
// crashing ends only their own run; the match result reports both.
type TwoPlayer struct {
	A, B *Game
}

// MatchResult is the outcome of a two-player match.
type MatchResult struct {
	A, B Result
	// Winner is "a", "b", or "draw", by survival first and score second.
	Winner string
}

// Play runs both games to completion (or ctx cancellation) and scores the
// match.
func (m *TwoPlayer) Play(ctx context.Context, pilotA, pilotB bool) MatchResult {
	var res MatchResult
	var wg sync.WaitGroup
	run := func(g *Game, pilot bool, out *Result) {
		if pilot {
			*out = NewAutopilot(g).Play(ctx)
		} else {
			*out = g.Run(ctx)
		}
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		run(m.A, pilotA, &res.A)
	}()
	go func() {
		defer wg.Done()
		run(m.B, pilotB, &res.B)
	}()
	wg.Wait()

	switch {
	case res.A.Survived && !res.B.Survived:
		res.Winner = "a"
	case res.B.Survived && !res.A.Survived:
		res.Winner = "b"
	case res.A.Score > res.B.Score:
		res.Winner = "a"
	case res.B.Score > res.A.Score:
		res.Winner = "b"
	default:
		res.Winner = "draw"
	}
	return res
}
