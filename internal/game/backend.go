package game

import (
	"context"
	"sync/atomic"
	"time"

	"benchpress/internal/core"
	"benchpress/internal/dbdriver"
	"benchpress/internal/stats"
)

// ManagerBackend adapts a running core.Manager (and its database) to the
// game's Backend interface.
type ManagerBackend struct {
	Manager *core.Manager
	// Cancel stops the workload on game over; optional.
	Cancel context.CancelFunc
	// ResetDB truncates the database on game over ("this will cause
	// BenchPress to halt the benchmark and reset the database"). Optional.
	ResetDB bool

	// runErr records the workload's terminal error when Run fails in the
	// background; Done() only signals completion, it carries no error.
	runErr atomic.Pointer[error]
}

// RunErr returns the error the background workload terminated with, or nil
// while it is still running or after a clean stop.
func (b *ManagerBackend) RunErr() error {
	if p := b.runErr.Load(); p != nil {
		return *p
	}
	return nil
}

// LatencySummary implements LatencyReporter with the workload's cumulative
// committed-latency digest.
func (b *ManagerBackend) LatencySummary() stats.LatencySummary {
	return b.Manager.Collector().GlobalSummary()
}

// SetRate implements Backend.
func (b *ManagerBackend) SetRate(tps float64) {
	if tps <= 0 {
		// A grounded character means zero throughput: pause rather than
		// switch to unlimited (rate 0 means open loop to the manager).
		b.Manager.Pause()
		return
	}
	b.Manager.Resume()
	b.Manager.SetRate(tps)
}

// MeasuredTPS implements Backend using the last complete stats window.
func (b *ManagerBackend) MeasuredTPS() float64 {
	return b.Manager.Collector().Snapshot().TPS
}

// Halt implements Backend.
func (b *ManagerBackend) Halt() {
	b.Manager.Pause()
	if b.Cancel != nil {
		b.Cancel()
	}
	if b.ResetDB {
		// Halt is best-effort teardown with no error channel; a failed disk
		// truncate is re-derived from the WAL on the next open.
		_ = b.Manager.DB().Engine().TruncateAll()
	}
}

// ChangeMixture performs the game's mixture dialog sequence: pause the
// workload ("temporarily block any thread from executing"), swap the
// mixture, resume. Preset names follow the dialog: "default", "readonly",
// "writeheavy"; nil weights with preset "custom" is invalid.
func (b *ManagerBackend) ChangeMixture(preset string, weights []float64) error {
	b.Manager.Pause()
	defer b.Manager.Resume()
	switch preset {
	case "default":
		b.Manager.SetMix(nil)
	case "custom":
		b.Manager.SetMix(weights)
	case "readonly", "writeheavy":
		mix, err := derivePreset(b.Manager, preset == "readonly")
		if err != nil {
			return err
		}
		b.Manager.SetMix(mix)
	}
	return nil
}

// derivePreset builds a read-only or write-heavy mixture from procedure
// metadata when the benchmark does not export explicit presets.
func derivePreset(m *core.Manager, readonly bool) ([]float64, error) {
	type presetMixer interface {
		ReadOnlyMix() []float64
		WriteHeavyMix() []float64
	}
	if pm, ok := m.Benchmark().(presetMixer); ok {
		if readonly {
			return pm.ReadOnlyMix(), nil
		}
		return pm.WriteHeavyMix(), nil
	}
	procs := m.Benchmark().Procedures()
	defaults := m.Benchmark().DefaultMix()
	mix := make([]float64, len(procs))
	for i, p := range procs {
		if p.ReadOnly == readonly {
			mix[i] = defaults[i]
		}
	}
	return mix, nil
}

// LaunchWorkload prepares a benchmark, starts its manager with one long
// unlimited-duration phase, and returns the backend wired for the game. The
// game then throttles it via SetRate.
func LaunchWorkload(ctx context.Context, benchName, dbms string, scale float64, terminals int, d time.Duration) (*ManagerBackend, error) {
	b, err := core.NewBenchmark(benchName, scale)
	if err != nil {
		return nil, err
	}
	db, err := dbdriver.Open(dbms)
	if err != nil {
		return nil, err
	}
	if err := core.Prepare(b, db, time.Now().UnixNano()%100000+1); err != nil {
		db.Close()
		return nil, err
	}
	m := core.NewManager(b, db, []core.Phase{{Duration: d, Rate: 1}}, core.Options{
		Terminals: terminals,
	})
	runCtx, cancel := context.WithCancel(ctx)
	mb := &ManagerBackend{Manager: m, Cancel: cancel}
	//lint:ignore bare-goroutine Manager.Run signals completion through Manager.Done(); Cancel is the shutdown path
	go func() {
		if err := m.Run(runCtx); err != nil {
			mb.runErr.Store(&err)
		}
	}()
	return mb, nil
}
