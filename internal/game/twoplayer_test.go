package game

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
)

// sharedCapacityBackend models two tenants on one engine: the sum of their
// delivered rates is capped; each backend gets its requested share of
// whatever capacity remains after the other's demand.
type sharedCapacityBackend struct {
	pool   *capacityPool
	rate   atomic.Uint64
	halted atomic.Bool
}

type capacityPool struct {
	capacity float64
	a, b     *sharedCapacityBackend
}

func newSharedPair(capacity float64) (*sharedCapacityBackend, *sharedCapacityBackend) {
	p := &capacityPool{capacity: capacity}
	p.a = &sharedCapacityBackend{pool: p}
	p.b = &sharedCapacityBackend{pool: p}
	return p.a, p.b
}

func (s *sharedCapacityBackend) SetRate(tps float64) { s.rate.Store(math.Float64bits(tps)) }
func (s *sharedCapacityBackend) Halt()               { s.halted.Store(true) }

func (s *sharedCapacityBackend) MeasuredTPS() float64 {
	my := math.Float64frombits(s.rate.Load())
	other := s.pool.a
	if s == s.pool.a {
		other = s.pool.b
	}
	theirs := math.Float64frombits(other.rate.Load())
	if other.halted.Load() {
		theirs = 0
	}
	total := my + theirs
	if total <= s.pool.capacity {
		return my
	}
	// Proportional degradation under contention.
	return my * s.pool.capacity / total
}

func TestTwoPlayerInterference(t *testing.T) {
	// Player A flies a course needing 600 tps; player B hogs the shared
	// 1000-tps engine at 800 tps. A's delivered rate is squeezed to
	// ~600*1000/1400 = 428 < corridor lo, so A must lose while B (with a
	// modest 300-tps course) survives.
	a, b := newSharedPair(1000)
	courseA := Steps("a", 600, 0, 1, 60*testTick, 200, testTick)
	courseB := Steps("b", 800, 0, 1, 60*testTick, 700, testTick)
	gA := New(courseA, a, nil, Config{Gravity: 100, Grace: 3})
	gB := New(courseB, b, nil, Config{Gravity: 100, Grace: 3})
	match := (&TwoPlayer{A: gA, B: gB}).Play(context.Background(), true, true)

	if match.A.Survived {
		t.Fatalf("player A should be squeezed out by the co-tenant: %+v", match.A)
	}
	if !match.B.Survived {
		t.Fatalf("player B had plenty of corridor: crashed at %d", match.B.CrashedAt)
	}
	if match.Winner != "b" {
		t.Fatalf("winner = %q", match.Winner)
	}
	if !a.halted.Load() {
		t.Fatal("losing player's benchmark must be halted")
	}
	if b.halted.Load() {
		t.Fatal("winning player's benchmark must keep running")
	}
}

func TestTwoPlayerDrawAndScore(t *testing.T) {
	// Ample capacity: both survive; equal courses give a draw.
	a, b := newSharedPair(1e9)
	cA := Steps("a", 200, 0, 1, 30*testTick, 400, testTick)
	cB := Steps("b", 200, 0, 1, 30*testTick, 400, testTick)
	gA := New(cA, a, nil, Config{Gravity: 50, Grace: 3})
	gB := New(cB, b, nil, Config{Gravity: 50, Grace: 3})
	match := (&TwoPlayer{A: gA, B: gB}).Play(context.Background(), true, true)
	if !match.A.Survived || !match.B.Survived {
		t.Fatalf("both should survive: %+v / %+v", match.A.Survived, match.B.Survived)
	}
	if match.Winner != "draw" {
		t.Fatalf("winner = %q (scores %d vs %d)", match.Winner, match.A.Score, match.B.Score)
	}
}
