package stats

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedRecordConcurrentSum hammers Record from many goroutines and
// checks that every outcome is counted exactly once, both in the totals and
// summed across finalized windows.
func TestShardedRecordConcurrentSum(t *testing.T) {
	const (
		workers = 16
		perW    = 5000
	)
	c := NewCollectorWindow([]string{"a", "b", "c"}, 5*time.Millisecond)
	var wg sync.WaitGroup
	var wantOK, wantAbort, wantRetry, wantErr atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := c.Recorder(w)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					rec.Record(rng.Intn(3), StatusOK, time.Millisecond)
					wantOK.Add(1)
				case 2:
					rec.Record(0, StatusAborted, 0)
					wantAbort.Add(1)
				case 3:
					if rng.Intn(2) == 0 {
						rec.Record(1, StatusRetry, 0)
						wantRetry.Add(1)
					} else {
						c.Record(2, StatusError, 0) // pool-affine path
						wantErr.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Committed(); got != wantOK.Load() {
		t.Fatalf("committed = %d, want %d", got, wantOK.Load())
	}
	if got := c.Aborted(); got != wantAbort.Load() {
		t.Fatalf("aborted = %d, want %d", got, wantAbort.Load())
	}
	if got := c.Retries(); got != wantRetry.Load() {
		t.Fatalf("retries = %d, want %d", got, wantRetry.Load())
	}
	if got := c.Errors(); got != wantErr.Load() {
		t.Fatalf("errors = %d, want %d", got, wantErr.Load())
	}
	// Force rotation past the last live window, then check the window sums
	// partition the totals exactly: no gaps, no double counts.
	time.Sleep(6 * time.Millisecond)
	ws := c.Windows()
	var sum Window
	perType := make([]int64, 3)
	for i, w := range ws {
		if i > 0 && w.Index != ws[i-1].Index+1 {
			t.Fatalf("non-consecutive windows: %d then %d", ws[i-1].Index, w.Index)
		}
		sum.Committed += w.Committed
		sum.Aborted += w.Aborted
		sum.Errors += w.Errors
		sum.Retries += w.Retries
		sum.SumLatencyUS += w.SumLatencyUS
		for ti := range perType {
			perType[ti] += w.PerType[ti]
		}
	}
	if sum.Committed != wantOK.Load() || sum.Aborted != wantAbort.Load() ||
		sum.Errors != wantErr.Load() || sum.Retries != wantRetry.Load() {
		t.Fatalf("windowed sums %+v do not match totals ok=%d abort=%d err=%d retry=%d",
			sum, wantOK.Load(), wantAbort.Load(), wantErr.Load(), wantRetry.Load())
	}
	var typed int64
	for _, n := range perType {
		typed += n
	}
	if typed != wantOK.Load() {
		t.Fatalf("per-type windowed sum = %d, want %d", typed, wantOK.Load())
	}
	if sum.SumLatencyUS != wantOK.Load()*1000 {
		t.Fatalf("latency sum = %d, want %d", sum.SumLatencyUS, wantOK.Load()*1000)
	}
}

// TestShardedRotationMatchesSequentialSemantics replays random single-threaded
// record/sleep schedules on a deterministic clock and checks the sharded
// collector produces exactly the windows the old sequential implementation
// would have: each record lands in the window of its record time, elapsed
// windows are materialized empty, indexes are consecutive from zero.
func TestShardedRotationMatchesSequentialSemantics(t *testing.T) {
	const windowDur = 10 * time.Millisecond
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c := NewCollectorWindow([]string{"x", "y"}, windowDur)
		base := time.Unix(1000, 0)
		cur := base
		c.start = base
		c.now = func() time.Time { return cur }
		rec := c.Recorder(trial)

		// Reference model: the pre-shard semantics.
		type refWin struct {
			committed, aborted, errors, retries, lat int64
			perType                                  [2]int64
		}
		ref := map[int]*refWin{}
		at := func(idx int) *refWin {
			w, ok := ref[idx]
			if !ok {
				w = &refWin{}
				ref[idx] = w
			}
			return w
		}
		ops := 20 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			cur = cur.Add(time.Duration(rng.Intn(8)) * time.Millisecond)
			idx := int(cur.Sub(base) / windowDur)
			ti := rng.Intn(2)
			lat := time.Duration(rng.Intn(5000)) * time.Microsecond
			switch rng.Intn(4) {
			case 0, 1:
				rec.Record(ti, StatusOK, lat)
				w := at(idx)
				w.committed++
				w.lat += lat.Microseconds()
				w.perType[ti]++
			case 2:
				rec.Record(ti, StatusAborted, 0)
				at(idx).aborted++
			case 3:
				rec.Record(ti, StatusError, 0)
				at(idx).errors++
			}
		}
		// Advance past the last record so every touched window finalizes.
		cur = cur.Add(2 * windowDur)
		got := c.Windows()
		lastIdx := int(cur.Sub(base)/windowDur) - 1
		if len(got) != lastIdx+1 {
			t.Fatalf("trial %d: %d windows, want %d", trial, len(got), lastIdx+1)
		}
		for i, w := range got {
			if w.Index != i {
				t.Fatalf("trial %d: window %d has index %d", trial, i, w.Index)
			}
			want := refWin{}
			if r, ok := ref[i]; ok {
				want = *r
			}
			if w.Committed != want.committed || w.Aborted != want.aborted ||
				w.Errors != want.errors || w.Retries != want.retries ||
				w.SumLatencyUS != want.lat ||
				w.PerType[0] != want.perType[0] || w.PerType[1] != want.perType[1] {
				t.Fatalf("trial %d window %d: got %+v, want %+v", trial, i, w, want)
			}
		}
	}
}

// TestRecorderSharding checks worker ids map onto distinct shards (up to the
// shard count) so that concurrent workers do not collide on one cell.
func TestRecorderSharding(t *testing.T) {
	c := NewCollector([]string{"t"})
	seen := map[*shard]bool{}
	for w := 0; w < nshards; w++ {
		seen[c.Recorder(w).s] = true
	}
	if len(seen) != nshards {
		t.Fatalf("distinct shards = %d, want %d", len(seen), nshards)
	}
	if c.Recorder(nshards).s != c.Recorder(0).s {
		t.Fatal("worker ids beyond the shard count should wrap")
	}
}

// BenchmarkStatsRecordParallel measures Record under contention: every
// goroutine records through its own Recorder handle, so throughput should
// scale with workers instead of serializing on a collector-wide mutex.
func BenchmarkStatsRecordParallel(b *testing.B) {
	c := NewCollector([]string{"read", "write"})
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rec := c.Recorder(int(next.Add(1) - 1))
		i := 0
		for pb.Next() {
			rec.Record(i&1, StatusOK, time.Millisecond)
			i++
		}
	})
}

// BenchmarkStatsRecordPoolAffine measures the Recorder-less Record path that
// picks a shard with processor affinity via a sync.Pool.
func BenchmarkStatsRecordPoolAffine(b *testing.B) {
	c := NewCollector([]string{"read", "write"})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Record(i&1, StatusOK, time.Millisecond)
			i++
		}
	})
}
