package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Millisecond || p99 > 105*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() < 99*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram non-zero")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatal("snapshot count")
	}
}

// Property: bucketFor is monotone and bucketMid stays within ~2x relative
// error of representative values.
func TestBucketProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		us := int64(raw)
		b := bucketFor(us)
		if b < 0 || b >= nBuckets {
			return false
		}
		if us > 0 && bucketFor(us-1) > b {
			return false // monotonicity
		}
		mid := bucketMid(b)
		if us >= subBuckets {
			// Relative error bound for log buckets.
			if mid > us || float64(us-mid) > float64(us)*0.05 {
				return false
			}
		} else if mid != us {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestCollectorWindows(t *testing.T) {
	c := NewCollectorWindow([]string{"read", "write"}, 10*time.Millisecond)
	for i := 0; i < 50; i++ {
		c.Record(i%2, StatusOK, time.Millisecond)
	}
	c.Record(0, StatusAborted, 0)
	c.Record(0, StatusError, 0)
	c.Record(0, StatusRetry, 0)
	time.Sleep(25 * time.Millisecond)
	ws := c.Windows()
	if len(ws) < 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	var committed int64
	for _, w := range ws {
		committed += w.Committed
	}
	if committed != 50 {
		t.Fatalf("windowed committed = %d", committed)
	}
	if c.Committed() != 50 || c.Aborted() != 1 || c.Errors() != 1 || c.Retries() != 1 {
		t.Fatalf("totals: %d %d %d %d", c.Committed(), c.Aborted(), c.Errors(), c.Retries())
	}
}

func TestCollectorPerType(t *testing.T) {
	c := NewCollector([]string{"a", "b"})
	c.Record(0, StatusOK, 10*time.Millisecond)
	c.Record(0, StatusOK, 20*time.Millisecond)
	c.Record(1, StatusOK, 100*time.Millisecond)
	if c.TypeHistogram(0).Count() != 2 || c.TypeHistogram(1).Count() != 1 {
		t.Fatal("per-type counts")
	}
	m := c.TypeHistogram(0).Mean()
	if m < 14*time.Millisecond || m > 16*time.Millisecond {
		t.Fatalf("type mean = %v", m)
	}
}

func TestSnapshot(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 10*time.Millisecond)
	for i := 0; i < 30; i++ {
		c.Record(0, StatusOK, 2*time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	s := c.Snapshot()
	if s.TPS <= 0 {
		t.Fatalf("snapshot TPS = %v", s.TPS)
	}
	if s.Committed != 30 {
		t.Fatalf("committed = %d", s.Committed)
	}
	if len(s.TypeLatency) != 1 || s.TypeLatency[0] <= 0 {
		t.Fatalf("type latency = %v", s.TypeLatency)
	}
}

func TestWindowGapsAreMaterialized(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 5*time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	ws := c.Windows()
	if len(ws) < 5 {
		t.Fatalf("expected gap windows, got %d", len(ws))
	}
	empty := 0
	for _, w := range ws {
		if w.Committed == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("no empty gap windows recorded")
	}
	// Window indexes must be consecutive.
	for i := 1; i < len(ws); i++ {
		if ws[i].Index != ws[i-1].Index+1 {
			t.Fatalf("non-consecutive windows: %d then %d", ws[i-1].Index, ws[i].Index)
		}
	}
}

func TestWindowLatencySummaries(t *testing.T) {
	c := NewCollectorWindow([]string{"fast", "slow"}, 20*time.Millisecond)
	// First window: type 0 at 1..100ms uniform, type 1 at a constant 500ms.
	for i := 1; i <= 100; i++ {
		c.Record(0, StatusOK, time.Duration(i)*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		c.Record(1, StatusOK, 500*time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)
	// Second window: type 0 at a constant 2ms.
	for i := 0; i < 50; i++ {
		c.Record(0, StatusOK, 2*time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)
	ws := c.Windows()
	if len(ws) < 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	w0 := ws[0]
	if w0.TypeLat[0].Count != 100 || w0.TypeLat[1].Count != 10 {
		t.Fatalf("w0 counts: %+v", w0.TypeLat)
	}
	if p50 := w0.TypeLat[0].P50; p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("w0 fast p50 = %v", p50)
	}
	if p99 := w0.TypeLat[0].P99; p99 < 90*time.Millisecond || p99 > 105*time.Millisecond {
		t.Fatalf("w0 fast p99 = %v", p99)
	}
	if p50 := w0.TypeLat[1].P50; p50 < 480*time.Millisecond || p50 > 520*time.Millisecond {
		t.Fatalf("w0 slow p50 = %v", p50)
	}
	// The all-types digest of the first window covers both populations.
	if w0.Lat.Count != 110 {
		t.Fatalf("w0 all count = %d", w0.Lat.Count)
	}
	if w0.Lat.Max < 480*time.Millisecond {
		t.Fatalf("w0 all max = %v", w0.Lat.Max)
	}
	// The second window's digest is a pure delta: the slow 500ms samples of
	// window 0 must not bleed into it.
	var w1 *Window
	for i := range ws[1:] {
		if ws[i+1].TypeLat[0].Count > 0 {
			w1 = &ws[i+1]
			break
		}
	}
	if w1 == nil {
		t.Fatal("no second window with records")
	}
	if w1.TypeLat[0].Count != 50 || w1.TypeLat[1].Count != 0 {
		t.Fatalf("w1 counts: %+v", w1.TypeLat)
	}
	if p99 := w1.TypeLat[0].P99; p99 > 4*time.Millisecond {
		t.Fatalf("w1 p99 bled across windows: %v", p99)
	}
}

func TestCumulativeSummaries(t *testing.T) {
	c := NewCollector([]string{"a", "b"})
	for i := 1; i <= 100; i++ {
		c.Record(0, StatusOK, time.Duration(i)*time.Millisecond)
	}
	c.Record(1, StatusOK, time.Second)
	ts := c.TypeSummary(0)
	if ts.Count != 100 {
		t.Fatalf("count = %d", ts.Count)
	}
	if ts.P95 < 90*time.Millisecond || ts.P95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v", ts.P95)
	}
	if ts.Max < 99*time.Millisecond {
		t.Fatalf("max = %v", ts.Max)
	}
	// The merged Histogram accessor must agree with the summary.
	hs := c.TypeHistogram(0).Snapshot()
	if hs.Count != ts.Count || hs.P50 != ts.P50 || hs.P99 != ts.P99 || hs.Max != ts.Max {
		t.Fatalf("histogram/summary mismatch: %+v vs %+v", hs, ts)
	}
	g := c.GlobalSummary()
	if g.Count != 101 || g.Max < time.Second {
		t.Fatalf("global = %+v", g)
	}
}

func TestSubscribeSignalsOnRotation(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 5*time.Millisecond)
	ch, cancel := c.Subscribe()
	defer cancel()
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(12 * time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond) // first record of a new window rotates
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no rotation signal")
	}
	// After cancel, rotation must not signal (and must not block).
	cancel()
	time.Sleep(12 * time.Millisecond)
	c.Windows() // force another rotation
	select {
	case <-ch:
		t.Fatal("signal after cancel")
	default:
	}
}

func TestWindowsSince(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 5*time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(22 * time.Millisecond)
	all := c.Windows()
	if len(all) < 3 {
		t.Fatalf("windows = %d", len(all))
	}
	// More windows may complete between the two calls, so require at
	// least the ones Windows() saw rather than an exact count.
	tail := c.WindowsSince(2)
	if len(tail) < len(all)-2 || tail[0].Index != 2 {
		t.Fatalf("since(2): len=%d first=%d (all=%d)", len(tail), tail[0].Index, len(all))
	}
	if got := c.WindowsSince(1 << 30); got != nil {
		t.Fatalf("past-end = %v", got)
	}
}

func TestAggregateLE(t *testing.T) {
	h := &Histogram{}
	h.Record(100 * time.Microsecond)
	h.Record(2 * time.Millisecond)
	h.Record(40 * time.Millisecond)
	h.Record(30 * time.Second)
	hs := HistSnapshot{Counts: make([]int64, nBuckets)}
	for i := range hs.Counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	le := AggregateLE(hs.Counts, DefaultLEBoundsUS)
	if len(le) != len(DefaultLEBoundsUS)+1 {
		t.Fatalf("le len = %d", len(le))
	}
	for i := 1; i < len(le); i++ {
		if le[i] < le[i-1] {
			t.Fatalf("non-monotonic cumulative buckets: %v", le)
		}
	}
	if le[len(le)-1] != 4 {
		t.Fatalf("+Inf bucket = %d", le[len(le)-1])
	}
	// 100us lands at or below the 250us bound.
	if le[0] != 1 {
		t.Fatalf("le[250us] = %d", le[0])
	}
	// 30s exceeds every finite bound: only +Inf counts it.
	if le[len(le)-2] != 3 {
		t.Fatalf("le[10s] = %d", le[len(le)-2])
	}
}

func TestHistSnapshotSummaryEmpty(t *testing.T) {
	var hs HistSnapshot
	if s := hs.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot summary: %+v", s)
	}
}

func TestLatencySummaryString(t *testing.T) {
	h := &Histogram{}
	h.Record(time.Millisecond)
	if s := h.Snapshot().String(); s == "" {
		t.Fatal("empty summary string")
	}
}
