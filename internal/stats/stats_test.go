package stats

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Millisecond || p99 > 105*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Max() < 99*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram non-zero")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatal("snapshot count")
	}
}

// Property: bucketFor is monotone and bucketMid stays within ~2x relative
// error of representative values.
func TestBucketProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		us := int64(raw)
		b := bucketFor(us)
		if b < 0 || b >= nBuckets {
			return false
		}
		if us > 0 && bucketFor(us-1) > b {
			return false // monotonicity
		}
		mid := bucketMid(b)
		if us >= subBuckets {
			// Relative error bound for log buckets.
			if mid > us || float64(us-mid) > float64(us)*0.05 {
				return false
			}
		} else if mid != us {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestCollectorWindows(t *testing.T) {
	c := NewCollectorWindow([]string{"read", "write"}, 10*time.Millisecond)
	for i := 0; i < 50; i++ {
		c.Record(i%2, StatusOK, time.Millisecond)
	}
	c.Record(0, StatusAborted, 0)
	c.Record(0, StatusError, 0)
	c.Record(0, StatusRetry, 0)
	time.Sleep(25 * time.Millisecond)
	ws := c.Windows()
	if len(ws) < 2 {
		t.Fatalf("windows = %d", len(ws))
	}
	var committed int64
	for _, w := range ws {
		committed += w.Committed
	}
	if committed != 50 {
		t.Fatalf("windowed committed = %d", committed)
	}
	if c.Committed() != 50 || c.Aborted() != 1 || c.Errors() != 1 || c.Retries() != 1 {
		t.Fatalf("totals: %d %d %d %d", c.Committed(), c.Aborted(), c.Errors(), c.Retries())
	}
}

func TestCollectorPerType(t *testing.T) {
	c := NewCollector([]string{"a", "b"})
	c.Record(0, StatusOK, 10*time.Millisecond)
	c.Record(0, StatusOK, 20*time.Millisecond)
	c.Record(1, StatusOK, 100*time.Millisecond)
	if c.TypeHistogram(0).Count() != 2 || c.TypeHistogram(1).Count() != 1 {
		t.Fatal("per-type counts")
	}
	m := c.TypeHistogram(0).Mean()
	if m < 14*time.Millisecond || m > 16*time.Millisecond {
		t.Fatalf("type mean = %v", m)
	}
}

func TestSnapshot(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 10*time.Millisecond)
	for i := 0; i < 30; i++ {
		c.Record(0, StatusOK, 2*time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	s := c.Snapshot()
	if s.TPS <= 0 {
		t.Fatalf("snapshot TPS = %v", s.TPS)
	}
	if s.Committed != 30 {
		t.Fatalf("committed = %d", s.Committed)
	}
	if len(s.TypeLatency) != 1 || s.TypeLatency[0] <= 0 {
		t.Fatalf("type latency = %v", s.TypeLatency)
	}
}

func TestWindowGapsAreMaterialized(t *testing.T) {
	c := NewCollectorWindow([]string{"t"}, 5*time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	c.Record(0, StatusOK, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	ws := c.Windows()
	if len(ws) < 5 {
		t.Fatalf("expected gap windows, got %d", len(ws))
	}
	empty := 0
	for _, w := range ws {
		if w.Committed == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatal("no empty gap windows recorded")
	}
	// Window indexes must be consecutive.
	for i := 1; i < len(ws); i++ {
		if ws[i].Index != ws[i-1].Index+1 {
			t.Fatalf("non-consecutive windows: %d then %d", ws[i-1].Index, ws[i].Index)
		}
	}
}

func TestLatencySummaryString(t *testing.T) {
	h := &Histogram{}
	h.Record(time.Millisecond)
	if s := h.Snapshot().String(); s == "" {
		t.Fatal("empty summary string")
	}
}
