package stats

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Status classifies one transaction attempt's outcome.
type Status uint8

const (
	// StatusOK is a committed transaction.
	StatusOK Status = iota
	// StatusAborted is a concurrency abort (deadlock/write conflict) that
	// exhausted its retries or was not retried.
	StatusAborted
	// StatusRetry is one retried attempt (the eventual outcome is recorded
	// separately).
	StatusRetry
	// StatusError is a non-concurrency error.
	StatusError
)

// Window is one finalized throughput window.
type Window struct {
	// Index is the window's ordinal since collection start.
	Index int
	// Start is the offset of the window start since collection start.
	Start time.Duration
	// Committed, Aborted, Errors, Retries count outcomes in the window.
	Committed int64
	Aborted   int64
	Errors    int64
	Retries   int64
	// PerType counts committed transactions per type.
	PerType []int64
	// SumLatencyUS sums committed-transaction latencies (microseconds).
	SumLatencyUS int64
}

// TPS returns the committed throughput of the window given its duration.
func (w Window) TPS(windowDur time.Duration) float64 {
	return float64(w.Committed) / windowDur.Seconds()
}

// AvgLatency returns the mean committed latency in the window.
func (w Window) AvgLatency() time.Duration {
	if w.Committed == 0 {
		return 0
	}
	return time.Duration(w.SumLatencyUS/w.Committed) * time.Microsecond
}

// nshards is the number of recording shards shared by all collectors: the
// GOMAXPROCS at package init rounded up to a power of two (so shard picking
// is a mask), with a floor that keeps worker ids spread even on small boxes.
var nshards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}()

// shard is one recording cell. Its counters are monotonic totals, never
// reset: window rotation attributes deltas between snapshots, so a Record
// racing a rotation lands in exactly one window (this one or the next) and is
// never lost or double-counted. The struct is padded so that neighbouring
// shards in the collector's array do not share a cache line.
type shard struct {
	committed atomic.Int64
	aborted   atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	sumLatUS  atomic.Int64
	// perType counts committed transactions per type (monotonic). The
	// backing array is over-allocated by a cache line's worth of slots so
	// distinct shards' arrays never abut.
	perType []atomic.Int64
	_       [64]byte // pad to keep adjacent shards on separate lines
}

// totals is one aggregated snapshot of every shard counter.
type totals struct {
	committed int64
	aborted   int64
	errors    int64
	retries   int64
	sumLatUS  int64
	perType   []int64
}

// Collector aggregates worker observations for one workload. Recording is
// lock-free: each worker adds to its own padded shard with atomics. The
// mutex only guards window rotation (advancing the live window index and
// snapshotting shard totals into finalized Windows), which happens at window
// granularity, not per record.
type Collector struct {
	start     time.Time
	windowDur time.Duration
	types     []string
	now       func() time.Time // injectable clock for deterministic tests

	shards []shard

	// liveIdx mirrors the mutex-guarded rotation state so the Record fast
	// path can detect an elapsed window with one atomic load.
	liveIdx atomic.Int64

	mu      sync.Mutex
	base    totals // shard totals at the start of the live window
	history []Window

	global  *Histogram
	perType []*Histogram
}

// NewCollector creates a collector for the given transaction-type names with
// 1-second windows.
func NewCollector(types []string) *Collector {
	return NewCollectorWindow(types, time.Second)
}

// NewCollectorWindow creates a collector with a custom window duration.
func NewCollectorWindow(types []string, window time.Duration) *Collector {
	c := &Collector{
		start:     time.Now(),
		windowDur: window,
		types:     append([]string(nil), types...),
		now:       time.Now,
		shards:    make([]shard, nshards),
		global:    &Histogram{},
		perType:   make([]*Histogram, len(types)),
	}
	for i := range c.perType {
		c.perType[i] = &Histogram{}
	}
	const padSlots = 8 // 64B of atomic.Int64: keeps shards' arrays apart
	for i := range c.shards {
		c.shards[i].perType = make([]atomic.Int64, len(types), len(types)+padSlots)
	}
	c.base.perType = make([]int64, len(types))
	return c
}

// Types returns the transaction-type names.
func (c *Collector) Types() []string { return c.types }

// Start returns the collection start time.
func (c *Collector) Start() time.Time { return c.start }

// WindowDuration returns the throughput window length.
func (c *Collector) WindowDuration() time.Duration { return c.windowDur }

// windowIndex returns the window ordinal for time t.
func (c *Collector) windowIndex(t time.Time) int {
	return int(t.Sub(c.start) / c.windowDur)
}

// sumShards aggregates the monotonic shard counters.
func (c *Collector) sumShards() totals {
	t := totals{perType: make([]int64, len(c.types))}
	for i := range c.shards {
		s := &c.shards[i]
		t.committed += s.committed.Load()
		t.aborted += s.aborted.Load()
		t.errors += s.errors.Load()
		t.retries += s.retries.Load()
		t.sumLatUS += s.sumLatUS.Load()
		for ti := range t.perType {
			t.perType[ti] += s.perType[ti].Load()
		}
	}
	return t
}

// advance rotates the live window forward to idx: the delta of shard totals
// since the last rotation is attributed to the window that was live, and any
// fully elapsed windows in between are materialized empty (records made
// during them would have triggered rotation themselves). Callers hold c.mu.
func (c *Collector) advance(idx int) {
	live := int(c.liveIdx.Load())
	if idx <= live {
		return
	}
	cur := c.sumShards()
	w := Window{
		Index:        live,
		Start:        time.Duration(live) * c.windowDur,
		Committed:    cur.committed - c.base.committed,
		Aborted:      cur.aborted - c.base.aborted,
		Errors:       cur.errors - c.base.errors,
		Retries:      cur.retries - c.base.retries,
		SumLatencyUS: cur.sumLatUS - c.base.sumLatUS,
		PerType:      make([]int64, len(c.types)),
	}
	for ti := range w.PerType {
		w.PerType[ti] = cur.perType[ti] - c.base.perType[ti]
	}
	c.history = append(c.history, w)
	c.base = cur
	for g := live + 1; g < idx; g++ {
		c.history = append(c.history, Window{
			Index:   g,
			Start:   time.Duration(g) * c.windowDur,
			PerType: make([]int64, len(c.types)),
		})
	}
	c.liveIdx.Store(int64(idx))
}

// shardIDs hands out goroutine-affine shard ordinals for Collector.Record
// callers that do not hold a Recorder. sync.Pool storage is per-P, so a
// worker keeps drawing the same ordinal while it stays on one processor.
var (
	nextShardID atomic.Int64
	shardIDs    = sync.Pool{New: func() any {
		id := int(nextShardID.Add(1)) & (nshards - 1)
		return &id
	}}
)

// Record notes one transaction attempt outcome. typeIdx indexes the
// collector's type list; latency applies to committed transactions. The
// shard is picked with processor affinity; hot loops that know their worker
// id should use a Recorder handle instead.
func (c *Collector) Record(typeIdx int, status Status, latency time.Duration) {
	id := shardIDs.Get().(*int)
	c.record(&c.shards[*id], typeIdx, status, latency)
	shardIDs.Put(id)
}

// Recorder is a shard-bound recording handle for one worker. It is the hot
// path the workload manager uses: Record on it is wait-free (atomic adds on
// the worker's own padded shard) except when it is the first to observe that
// a window has elapsed, in which case it performs the rotation under the
// collector mutex once per window.
type Recorder struct {
	c *Collector
	s *shard
}

// Recorder returns the recording handle for one worker id.
func (c *Collector) Recorder(worker int) Recorder {
	return Recorder{c: c, s: &c.shards[worker&(nshards-1)]}
}

// Record notes one transaction attempt outcome on the worker's shard.
func (r Recorder) Record(typeIdx int, status Status, latency time.Duration) {
	r.c.record(r.s, typeIdx, status, latency)
}

func (c *Collector) record(s *shard, typeIdx int, status Status, latency time.Duration) {
	idx := c.windowIndex(c.now())
	if int64(idx) > c.liveIdx.Load() {
		// First record of a new window: rotate. Once per window per worker
		// at most, so the mutex stays off the steady-state path.
		c.mu.Lock()
		c.advance(idx)
		c.mu.Unlock()
	}
	switch status {
	case StatusOK:
		s.committed.Add(1)
		s.sumLatUS.Add(latency.Microseconds())
		if typeIdx >= 0 && typeIdx < len(s.perType) {
			s.perType[typeIdx].Add(1)
			c.perType[typeIdx].Record(latency)
		}
		c.global.Record(latency)
	case StatusAborted:
		s.aborted.Add(1)
	case StatusRetry:
		s.retries.Add(1)
	case StatusError:
		s.errors.Add(1)
	}
}

// Committed returns the total committed count.
func (c *Collector) Committed() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].committed.Load()
	}
	return n
}

// Aborted returns the total aborted count.
func (c *Collector) Aborted() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].aborted.Load()
	}
	return n
}

// Errors returns the total error count.
func (c *Collector) Errors() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].errors.Load()
	}
	return n
}

// Retries returns the total retry count.
func (c *Collector) Retries() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].retries.Load()
	}
	return n
}

// Global returns the all-types latency histogram.
func (c *Collector) Global() *Histogram { return c.global }

// TypeHistogram returns the latency histogram of one transaction type.
func (c *Collector) TypeHistogram(i int) *Histogram { return c.perType[i] }

// Windows returns all finalized windows up to now (forcing rotation of any
// windows that have fully elapsed).
func (c *Collector) Windows() []Window {
	idx := c.windowIndex(c.now())
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(idx)
	out := make([]Window, len(c.history))
	copy(out, c.history)
	return out
}

// Snapshot is the instantaneous feedback the control API serves: the last
// complete window's throughput and per-type average latency, as the paper's
// Section 2.2.4 describes.
type Snapshot struct {
	// Elapsed is the time since collection start.
	Elapsed time.Duration
	// TPS is the committed throughput of the last complete window.
	TPS float64
	// AbortsPerSec is the abort rate of the last complete window.
	AbortsPerSec float64
	// AvgLatency is the mean committed latency of the last complete window.
	AvgLatency time.Duration
	// TypeNames and TypeLatency give per-transaction-type mean latency over
	// the whole run; TypeCounts the committed totals.
	TypeNames   []string
	TypeLatency []time.Duration
	TypeCounts  []int64
	// Totals.
	Committed, Aborted, Errors, Retries int64
}

// Snapshot returns instantaneous performance feedback.
func (c *Collector) Snapshot() Snapshot {
	now := c.now()
	idx := c.windowIndex(now)
	c.mu.Lock()
	c.advance(idx)
	var last Window
	if n := len(c.history); n > 0 {
		last = c.history[n-1]
	}
	c.mu.Unlock()

	s := Snapshot{
		Elapsed:      now.Sub(c.start),
		TPS:          last.TPS(c.windowDur),
		AbortsPerSec: float64(last.Aborted) / c.windowDur.Seconds(),
		AvgLatency:   last.AvgLatency(),
		TypeNames:    c.types,
		Committed:    c.Committed(),
		Aborted:      c.Aborted(),
		Errors:       c.Errors(),
		Retries:      c.Retries(),
	}
	s.TypeLatency = make([]time.Duration, len(c.types))
	s.TypeCounts = make([]int64, len(c.types))
	for i := range c.types {
		s.TypeLatency[i] = c.perType[i].Mean()
		s.TypeCounts[i] = c.perType[i].Count()
	}
	return s
}
