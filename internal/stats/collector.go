package stats

import (
	"sync"
	"sync/atomic"
	"time"
)

// Status classifies one transaction attempt's outcome.
type Status uint8

const (
	// StatusOK is a committed transaction.
	StatusOK Status = iota
	// StatusAborted is a concurrency abort (deadlock/write conflict) that
	// exhausted its retries or was not retried.
	StatusAborted
	// StatusRetry is one retried attempt (the eventual outcome is recorded
	// separately).
	StatusRetry
	// StatusError is a non-concurrency error.
	StatusError
)

// Window is one finalized throughput window.
type Window struct {
	// Index is the window's ordinal since collection start.
	Index int
	// Start is the offset of the window start since collection start.
	Start time.Duration
	// Committed, Aborted, Errors, Retries count outcomes in the window.
	Committed int64
	Aborted   int64
	Errors    int64
	Retries   int64
	// PerType counts committed transactions per type.
	PerType []int64
	// SumLatencyUS sums committed-transaction latencies (microseconds).
	SumLatencyUS int64
}

// TPS returns the committed throughput of the window given its duration.
func (w Window) TPS(windowDur time.Duration) float64 {
	return float64(w.Committed) / windowDur.Seconds()
}

// AvgLatency returns the mean committed latency in the window.
func (w Window) AvgLatency() time.Duration {
	if w.Committed == 0 {
		return 0
	}
	return time.Duration(w.SumLatencyUS/w.Committed) * time.Microsecond
}

// liveWindow accumulates the in-progress window with atomics.
type liveWindow struct {
	idx       int
	committed atomic.Int64
	aborted   atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	perType   []atomic.Int64
	sumLatUS  atomic.Int64
}

// Collector aggregates worker observations for one workload.
type Collector struct {
	start     time.Time
	windowDur time.Duration
	types     []string

	mu      sync.Mutex
	live    *liveWindow
	history []Window

	global  *Histogram
	perType []*Histogram

	committed atomic.Int64
	aborted   atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
}

// NewCollector creates a collector for the given transaction-type names with
// 1-second windows.
func NewCollector(types []string) *Collector {
	return NewCollectorWindow(types, time.Second)
}

// NewCollectorWindow creates a collector with a custom window duration.
func NewCollectorWindow(types []string, window time.Duration) *Collector {
	c := &Collector{
		start:     time.Now(),
		windowDur: window,
		types:     append([]string(nil), types...),
		global:    &Histogram{},
		perType:   make([]*Histogram, len(types)),
	}
	for i := range c.perType {
		c.perType[i] = &Histogram{}
	}
	c.live = c.newLive(0)
	return c
}

func (c *Collector) newLive(idx int) *liveWindow {
	return &liveWindow{idx: idx, perType: make([]atomic.Int64, len(c.types))}
}

// Types returns the transaction-type names.
func (c *Collector) Types() []string { return c.types }

// Start returns the collection start time.
func (c *Collector) Start() time.Time { return c.start }

// WindowDuration returns the throughput window length.
func (c *Collector) WindowDuration() time.Duration { return c.windowDur }

// windowIndex returns the window ordinal for time t.
func (c *Collector) windowIndex(t time.Time) int {
	return int(t.Sub(c.start) / c.windowDur)
}

// advance rotates the live window forward to idx, materializing finished
// windows (including empty gaps) into history. Callers hold c.mu.
func (c *Collector) advance(idx int) {
	for c.live.idx < idx {
		w := c.live
		c.history = append(c.history, Window{
			Index:        w.idx,
			Start:        time.Duration(w.idx) * c.windowDur,
			Committed:    w.committed.Load(),
			Aborted:      w.aborted.Load(),
			Errors:       w.errors.Load(),
			Retries:      w.retries.Load(),
			PerType:      loadAll(w.perType),
			SumLatencyUS: w.sumLatUS.Load(),
		})
		c.live = c.newLive(w.idx + 1)
	}
}

func loadAll(a []atomic.Int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		out[i] = a[i].Load()
	}
	return out
}

// Record notes one transaction attempt outcome. typeIdx indexes the
// collector's type list; latency applies to committed transactions.
func (c *Collector) Record(typeIdx int, status Status, latency time.Duration) {
	now := time.Now()
	idx := c.windowIndex(now)
	c.mu.Lock()
	if idx > c.live.idx {
		c.advance(idx)
	}
	w := c.live
	c.mu.Unlock()

	switch status {
	case StatusOK:
		w.committed.Add(1)
		w.sumLatUS.Add(latency.Microseconds())
		if typeIdx >= 0 && typeIdx < len(w.perType) {
			w.perType[typeIdx].Add(1)
			c.perType[typeIdx].Record(latency)
		}
		c.global.Record(latency)
		c.committed.Add(1)
	case StatusAborted:
		w.aborted.Add(1)
		c.aborted.Add(1)
	case StatusRetry:
		w.retries.Add(1)
		c.retries.Add(1)
	case StatusError:
		w.errors.Add(1)
		c.errors.Add(1)
	}
}

// Committed returns the total committed count.
func (c *Collector) Committed() int64 { return c.committed.Load() }

// Aborted returns the total aborted count.
func (c *Collector) Aborted() int64 { return c.aborted.Load() }

// Errors returns the total error count.
func (c *Collector) Errors() int64 { return c.errors.Load() }

// Retries returns the total retry count.
func (c *Collector) Retries() int64 { return c.retries.Load() }

// Global returns the all-types latency histogram.
func (c *Collector) Global() *Histogram { return c.global }

// TypeHistogram returns the latency histogram of one transaction type.
func (c *Collector) TypeHistogram(i int) *Histogram { return c.perType[i] }

// Windows returns all finalized windows up to now (forcing rotation of any
// windows that have fully elapsed).
func (c *Collector) Windows() []Window {
	idx := c.windowIndex(time.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(idx)
	out := make([]Window, len(c.history))
	copy(out, c.history)
	return out
}

// Snapshot is the instantaneous feedback the control API serves: the last
// complete window's throughput and per-type average latency, as the paper's
// Section 2.2.4 describes.
type Snapshot struct {
	// Elapsed is the time since collection start.
	Elapsed time.Duration
	// TPS is the committed throughput of the last complete window.
	TPS float64
	// AbortsPerSec is the abort rate of the last complete window.
	AbortsPerSec float64
	// AvgLatency is the mean committed latency of the last complete window.
	AvgLatency time.Duration
	// TypeNames and TypeLatency give per-transaction-type mean latency over
	// the whole run; TypeCounts the committed totals.
	TypeNames   []string
	TypeLatency []time.Duration
	TypeCounts  []int64
	// Totals.
	Committed, Aborted, Errors, Retries int64
}

// Snapshot returns instantaneous performance feedback.
func (c *Collector) Snapshot() Snapshot {
	now := time.Now()
	idx := c.windowIndex(now)
	c.mu.Lock()
	c.advance(idx)
	var last Window
	if n := len(c.history); n > 0 {
		last = c.history[n-1]
	}
	c.mu.Unlock()

	s := Snapshot{
		Elapsed:      now.Sub(c.start),
		TPS:          last.TPS(c.windowDur),
		AbortsPerSec: float64(last.Aborted) / c.windowDur.Seconds(),
		AvgLatency:   last.AvgLatency(),
		TypeNames:    c.types,
		Committed:    c.committed.Load(),
		Aborted:      c.aborted.Load(),
		Errors:       c.errors.Load(),
		Retries:      c.retries.Load(),
	}
	s.TypeLatency = make([]time.Duration, len(c.types))
	s.TypeCounts = make([]int64, len(c.types))
	for i := range c.types {
		s.TypeLatency[i] = c.perType[i].Mean()
		s.TypeCounts[i] = c.perType[i].Count()
	}
	return s
}
