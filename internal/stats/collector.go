package stats

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Status classifies one transaction attempt's outcome.
type Status uint8

const (
	// StatusOK is a committed transaction.
	StatusOK Status = iota
	// StatusAborted is a concurrency abort (deadlock/write conflict) that
	// exhausted its retries or was not retried.
	StatusAborted
	// StatusRetry is one retried attempt (the eventual outcome is recorded
	// separately).
	StatusRetry
	// StatusError is a non-concurrency error.
	StatusError
)

// Window is one finalized throughput window.
type Window struct {
	// Index is the window's ordinal since collection start.
	Index int
	// Start is the offset of the window start since collection start.
	Start time.Duration
	// Committed, Aborted, Errors, Retries count outcomes in the window.
	Committed int64
	Aborted   int64
	Errors    int64
	Retries   int64
	// PerType counts committed transactions per type.
	PerType []int64
	// SumLatencyUS sums committed-transaction latencies (microseconds).
	SumLatencyUS int64
	// TypeLat digests committed latency per type within the window
	// (parallel to the collector's type list), merged from the per-worker
	// shard histograms at rotation.
	TypeLat []LatencySummary
	// Lat digests committed latency across all types within the window.
	Lat LatencySummary
}

// TPS returns the committed throughput of the window given its duration.
func (w Window) TPS(windowDur time.Duration) float64 {
	return float64(w.Committed) / windowDur.Seconds()
}

// AvgLatency returns the mean committed latency in the window.
func (w Window) AvgLatency() time.Duration {
	if w.Committed == 0 {
		return 0
	}
	return time.Duration(w.SumLatencyUS/w.Committed) * time.Microsecond
}

// nshards is the number of recording shards shared by all collectors: the
// GOMAXPROCS at package init rounded up to a power of two (so shard picking
// is a mask), with a floor that keeps worker ids spread even on small boxes.
var nshards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}()

// latCell is one shard's latency histogram for one transaction type: fixed
// log buckets plus exact sum and max, all monotonic. A worker records into
// its own shard's cells, so the adds never contend and take no lock; window
// rotation and the cumulative accessors merge cells across shards.
type latCell struct {
	counts []atomic.Int64 // nBuckets, sliced from the shard's backing array
	sum    atomic.Int64
	max    atomic.Int64
}

// record adds one observation to the cell.
func (l *latCell) record(us int64) {
	l.counts[bucketFor(us)].Add(1)
	l.sum.Add(us)
	for {
		cur := l.max.Load()
		if us <= cur || l.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// shard is one recording cell. Its counters are monotonic totals, never
// reset: window rotation attributes deltas between snapshots, so a Record
// racing a rotation lands in exactly one window (this one or the next) and is
// never lost or double-counted. The struct is padded so that neighbouring
// shards in the collector's array do not share a cache line.
type shard struct {
	committed atomic.Int64
	aborted   atomic.Int64
	errors    atomic.Int64
	retries   atomic.Int64
	sumLatUS  atomic.Int64
	// perType counts committed transactions per type (monotonic). The
	// backing array is over-allocated by a cache line's worth of slots so
	// distinct shards' arrays never abut.
	perType []atomic.Int64
	// lat holds this shard's per-type latency histograms. The bucket arrays
	// of one shard share one backing allocation; distinct shards allocate
	// separately, so cross-shard false sharing cannot occur.
	lat []latCell
	_   [64]byte // pad to keep adjacent shards on separate lines
}

// totals is one aggregated snapshot of every shard counter.
type totals struct {
	committed int64
	aborted   int64
	errors    int64
	retries   int64
	sumLatUS  int64
	perType   []int64
}

// Collector aggregates worker observations for one workload. Recording is
// lock-free: each worker adds to its own padded shard with atomics,
// including the fixed-bucket latency histogram adds. The mutex only guards
// window rotation (advancing the live window index and snapshotting shard
// totals into finalized Windows), which happens at window granularity, not
// per record.
type Collector struct {
	start     time.Time
	windowDur time.Duration
	types     []string
	now       func() time.Time // injectable clock for deterministic tests

	shards []shard

	// liveIdx mirrors the mutex-guarded rotation state so the Record fast
	// path can detect an elapsed window with one atomic load.
	liveIdx atomic.Int64

	mu      sync.Mutex
	base    totals // shard totals at the start of the live window
	history []Window

	// Histogram rotation state, guarded by mu. histBase holds per-type
	// cumulative bucket counts at the start of the live window; latSumBase
	// the matching per-type latency sums. curBuf/deltaBuf/allBuf are
	// reusable scratch so rotation allocates only the per-window summaries.
	histBase   [][]int64
	latSumBase []int64
	curBuf     []int64
	deltaBuf   []int64
	allBuf     []int64

	// subs are window-completion listeners (SSE streams). Signaled with a
	// non-blocking send after rotation appends windows, so a slow subscriber
	// can never block a recording worker.
	subMu   sync.Mutex
	subs    map[int]chan struct{}
	nextSub int
}

// NewCollector creates a collector for the given transaction-type names with
// 1-second windows.
func NewCollector(types []string) *Collector {
	return NewCollectorWindow(types, time.Second)
}

// NewCollectorWindow creates a collector with a custom window duration.
func NewCollectorWindow(types []string, window time.Duration) *Collector {
	c := &Collector{
		start:     time.Now(),
		windowDur: window,
		types:     append([]string(nil), types...),
		now:       time.Now,
		shards:    make([]shard, nshards),
	}
	const padSlots = 8 // 64B of atomic.Int64: keeps shards' arrays apart
	for i := range c.shards {
		s := &c.shards[i]
		s.perType = make([]atomic.Int64, len(types), len(types)+padSlots)
		s.lat = make([]latCell, len(types))
		backing := make([]atomic.Int64, len(types)*nBuckets)
		for t := range s.lat {
			s.lat[t].counts = backing[t*nBuckets : (t+1)*nBuckets : (t+1)*nBuckets]
		}
	}
	c.base.perType = make([]int64, len(types))
	c.histBase = make([][]int64, len(types))
	for t := range c.histBase {
		c.histBase[t] = make([]int64, nBuckets)
	}
	c.latSumBase = make([]int64, len(types))
	c.curBuf = make([]int64, nBuckets)
	c.deltaBuf = make([]int64, nBuckets)
	c.allBuf = make([]int64, nBuckets)
	return c
}

// Types returns the transaction-type names.
func (c *Collector) Types() []string { return c.types }

// Start returns the collection start time.
func (c *Collector) Start() time.Time { return c.start }

// WindowDuration returns the throughput window length.
func (c *Collector) WindowDuration() time.Duration { return c.windowDur }

// windowIndex returns the window ordinal for time t.
func (c *Collector) windowIndex(t time.Time) int {
	return int(t.Sub(c.start) / c.windowDur)
}

// sumShards aggregates the monotonic shard counters.
func (c *Collector) sumShards() totals {
	t := totals{perType: make([]int64, len(c.types))}
	for i := range c.shards {
		s := &c.shards[i]
		t.committed += s.committed.Load()
		t.aborted += s.aborted.Load()
		t.errors += s.errors.Load()
		t.retries += s.retries.Load()
		t.sumLatUS += s.sumLatUS.Load()
		for ti := range t.perType {
			t.perType[ti] += s.perType[ti].Load()
		}
	}
	return t
}

// advance rotates the live window forward to idx: the delta of shard totals
// since the last rotation is attributed to the window that was live, and any
// fully elapsed windows in between are materialized empty (records made
// during them would have triggered rotation themselves). Callers hold c.mu.
func (c *Collector) advance(idx int) {
	live := int(c.liveIdx.Load())
	if idx <= live {
		return
	}
	cur := c.sumShards()
	w := Window{
		Index:        live,
		Start:        time.Duration(live) * c.windowDur,
		Committed:    cur.committed - c.base.committed,
		Aborted:      cur.aborted - c.base.aborted,
		Errors:       cur.errors - c.base.errors,
		Retries:      cur.retries - c.base.retries,
		SumLatencyUS: cur.sumLatUS - c.base.sumLatUS,
		PerType:      make([]int64, len(c.types)),
		TypeLat:      make([]LatencySummary, len(c.types)),
	}
	for ti := range w.PerType {
		w.PerType[ti] = cur.perType[ti] - c.base.perType[ti]
	}
	// Merge the per-shard histograms: for each type, sum the shard buckets
	// into curBuf, diff against the window-start baseline into deltaBuf,
	// digest the delta, and fold it into the all-types delta (allBuf). The
	// baseline then becomes the merged current counts.
	clearInts(c.allBuf)
	var allSum int64
	for t := range c.types {
		clearInts(c.curBuf)
		for si := range c.shards {
			counts := c.shards[si].lat[t].counts
			for b := range c.curBuf {
				c.curBuf[b] += counts[b].Load()
			}
		}
		var curSum int64
		for si := range c.shards {
			curSum += c.shards[si].lat[t].sum.Load()
		}
		base := c.histBase[t]
		for b := range c.deltaBuf {
			d := c.curBuf[b] - base[b]
			c.deltaBuf[b] = d
			c.allBuf[b] += d
		}
		deltaSum := curSum - c.latSumBase[t]
		allSum += deltaSum
		w.TypeLat[t] = HistSnapshot{Counts: c.deltaBuf, SumUS: deltaSum}.Summary()
		copy(base, c.curBuf)
		c.latSumBase[t] = curSum
	}
	w.Lat = HistSnapshot{Counts: c.allBuf, SumUS: allSum}.Summary()
	c.history = append(c.history, w)
	c.base = cur
	for g := live + 1; g < idx; g++ {
		c.history = append(c.history, Window{
			Index:   g,
			Start:   time.Duration(g) * c.windowDur,
			PerType: make([]int64, len(c.types)),
			TypeLat: make([]LatencySummary, len(c.types)),
		})
	}
	c.liveIdx.Store(int64(idx))
	c.notifySubscribers()
}

// clearInts zeroes a scratch slice.
func clearInts(s []int64) {
	for i := range s {
		s[i] = 0
	}
}

// Subscribe registers a window-completion listener: the returned channel
// receives a (coalesced) signal whenever rotation finalizes one or more
// windows. The send is non-blocking, so a slow listener only coalesces
// signals and can never stall the recording path. The cancel function
// removes the listener.
func (c *Collector) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	c.subMu.Lock()
	if c.subs == nil {
		c.subs = make(map[int]chan struct{})
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = ch
	c.subMu.Unlock()
	return ch, func() {
		c.subMu.Lock()
		delete(c.subs, id)
		c.subMu.Unlock()
	}
}

// notifySubscribers signals every listener without blocking. Called with
// c.mu held (subMu is a leaf lock).
func (c *Collector) notifySubscribers() {
	c.subMu.Lock()
	for _, ch := range c.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	c.subMu.Unlock()
}

// shardIDs hands out goroutine-affine shard ordinals for Collector.Record
// callers that do not hold a Recorder. sync.Pool storage is per-P, so a
// worker keeps drawing the same ordinal while it stays on one processor.
var (
	nextShardID atomic.Int64
	shardIDs    = sync.Pool{New: func() any {
		id := int(nextShardID.Add(1)) & (nshards - 1)
		return &id
	}}
)

// Record notes one transaction attempt outcome. typeIdx indexes the
// collector's type list; latency applies to committed transactions. The
// shard is picked with processor affinity; hot loops that know their worker
// id should use a Recorder handle instead.
func (c *Collector) Record(typeIdx int, status Status, latency time.Duration) {
	id := shardIDs.Get().(*int)
	c.record(&c.shards[*id], typeIdx, status, latency)
	shardIDs.Put(id)
}

// Recorder is a shard-bound recording handle for one worker. It is the hot
// path the workload manager uses: Record on it is wait-free (atomic adds on
// the worker's own padded shard, including the histogram bucket add) except
// when it is the first to observe that a window has elapsed, in which case
// it performs the rotation under the collector mutex once per window.
type Recorder struct {
	c *Collector
	s *shard
}

// Recorder returns the recording handle for one worker id.
func (c *Collector) Recorder(worker int) Recorder {
	return Recorder{c: c, s: &c.shards[worker&(nshards-1)]}
}

// Record notes one transaction attempt outcome on the worker's shard.
func (r Recorder) Record(typeIdx int, status Status, latency time.Duration) {
	r.c.record(r.s, typeIdx, status, latency)
}

func (c *Collector) record(s *shard, typeIdx int, status Status, latency time.Duration) {
	idx := c.windowIndex(c.now())
	if int64(idx) > c.liveIdx.Load() {
		// First record of a new window: rotate. Once per window per worker
		// at most, so the mutex stays off the steady-state path.
		c.mu.Lock()
		c.advance(idx)
		c.mu.Unlock()
	}
	switch status {
	case StatusOK:
		us := latency.Microseconds()
		s.committed.Add(1)
		s.sumLatUS.Add(us)
		if typeIdx >= 0 && typeIdx < len(s.perType) {
			s.perType[typeIdx].Add(1)
			s.lat[typeIdx].record(us)
		}
	case StatusAborted:
		s.aborted.Add(1)
	case StatusRetry:
		s.retries.Add(1)
	case StatusError:
		s.errors.Add(1)
	}
}

// Committed returns the total committed count.
func (c *Collector) Committed() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].committed.Load()
	}
	return n
}

// Aborted returns the total aborted count.
func (c *Collector) Aborted() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].aborted.Load()
	}
	return n
}

// Errors returns the total error count.
func (c *Collector) Errors() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].errors.Load()
	}
	return n
}

// Retries returns the total retry count.
func (c *Collector) Retries() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].retries.Load()
	}
	return n
}

// TypeHistSnapshot merges the shards' cumulative bucket counts for one
// transaction type. It takes no lock: the counters are monotonic, so the
// copy is a consistent-enough point-in-time view for reporting.
func (c *Collector) TypeHistSnapshot(i int) HistSnapshot {
	hs := HistSnapshot{Counts: make([]int64, nBuckets)}
	if i < 0 || i >= len(c.types) {
		return hs
	}
	for si := range c.shards {
		cell := &c.shards[si].lat[i]
		for b := range hs.Counts {
			hs.Counts[b] += cell.counts[b].Load()
		}
		hs.SumUS += cell.sum.Load()
		if m := cell.max.Load(); m > hs.MaxUS {
			hs.MaxUS = m
		}
	}
	return hs
}

// GlobalHistSnapshot merges every type's cumulative buckets.
func (c *Collector) GlobalHistSnapshot() HistSnapshot {
	hs := HistSnapshot{Counts: make([]int64, nBuckets)}
	for si := range c.shards {
		for t := range c.types {
			cell := &c.shards[si].lat[t]
			for b := range hs.Counts {
				hs.Counts[b] += cell.counts[b].Load()
			}
			hs.SumUS += cell.sum.Load()
			if m := cell.max.Load(); m > hs.MaxUS {
				hs.MaxUS = m
			}
		}
	}
	return hs
}

// TypeSummary digests one type's cumulative latency distribution.
func (c *Collector) TypeSummary(i int) LatencySummary { return c.TypeHistSnapshot(i).Summary() }

// GlobalSummary digests the all-types cumulative latency distribution.
func (c *Collector) GlobalSummary() LatencySummary { return c.GlobalHistSnapshot().Summary() }

// Global returns the all-types latency histogram, merged from the per-worker
// shards (a fresh copy; mutating it does not affect the collector).
func (c *Collector) Global() *Histogram { return c.GlobalHistSnapshot().Histogram() }

// TypeHistogram returns the latency histogram of one transaction type,
// merged from the per-worker shards (a fresh copy).
func (c *Collector) TypeHistogram(i int) *Histogram { return c.TypeHistSnapshot(i).Histogram() }

// Windows returns all finalized windows up to now (forcing rotation of any
// windows that have fully elapsed).
func (c *Collector) Windows() []Window {
	return c.WindowsSince(0)
}

// WindowsSince returns the finalized windows with Index >= from, forcing
// rotation of any fully elapsed windows first. Window indexes are
// consecutive from zero (gaps are materialized empty), so history position
// equals ordinal; SSE streams use this to fetch exactly the windows they
// have not yet pushed.
func (c *Collector) WindowsSince(from int) []Window {
	idx := c.windowIndex(c.now())
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advance(idx)
	if from < 0 {
		from = 0
	}
	if from >= len(c.history) {
		return nil
	}
	out := make([]Window, len(c.history)-from)
	copy(out, c.history[from:])
	return out
}

// Snapshot is the instantaneous feedback the control API serves: the last
// complete window's throughput and per-type latency, as the paper's Section
// 2.2.4 describes, extended with the percentile digests the live
// observability layer pushes.
type Snapshot struct {
	// Elapsed is the time since collection start.
	Elapsed time.Duration
	// TPS is the committed throughput of the last complete window.
	TPS float64
	// AbortsPerSec is the abort rate of the last complete window.
	AbortsPerSec float64
	// AvgLatency is the mean committed latency of the last complete window.
	AvgLatency time.Duration
	// WindowLat digests the last complete window's committed latency across
	// all types (p50/p95/p99/max).
	WindowLat LatencySummary
	// TypeNames and TypeLatency give per-transaction-type mean latency over
	// the whole run; TypeCounts the committed totals.
	TypeNames   []string
	TypeLatency []time.Duration
	TypeCounts  []int64
	// TypeLat are the cumulative per-type latency digests (parallel to
	// TypeNames).
	TypeLat []LatencySummary
	// Latency is the cumulative all-types latency digest.
	Latency LatencySummary
	// Totals.
	Committed, Aborted, Errors, Retries int64
}

// Snapshot returns instantaneous performance feedback.
func (c *Collector) Snapshot() Snapshot {
	now := c.now()
	idx := c.windowIndex(now)
	c.mu.Lock()
	c.advance(idx)
	var last Window
	if n := len(c.history); n > 0 {
		last = c.history[n-1]
	}
	c.mu.Unlock()

	s := Snapshot{
		Elapsed:      now.Sub(c.start),
		TPS:          last.TPS(c.windowDur),
		AbortsPerSec: float64(last.Aborted) / c.windowDur.Seconds(),
		AvgLatency:   last.AvgLatency(),
		WindowLat:    last.Lat,
		TypeNames:    c.types,
		Latency:      c.GlobalSummary(),
		Committed:    c.Committed(),
		Aborted:      c.Aborted(),
		Errors:       c.Errors(),
		Retries:      c.Retries(),
	}
	s.TypeLatency = make([]time.Duration, len(c.types))
	s.TypeCounts = make([]int64, len(c.types))
	s.TypeLat = make([]LatencySummary, len(c.types))
	for i := range c.types {
		ts := c.TypeSummary(i)
		s.TypeLat[i] = ts
		s.TypeLatency[i] = ts.Mean
		s.TypeCounts[i] = ts.Count
	}
	return s
}
