// Package stats implements the statistics collection side of the testbed:
// latency histograms, per-transaction-type breakdowns, and per-second
// throughput series. Workers record into a Collector concurrently; the
// control API and the game read instantaneous snapshots from it.
package stats

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent log-bucketed latency histogram (HDR-style):
// values are bucketed by magnitude with subBuckets linear sub-buckets per
// power of two, giving bounded relative error across microseconds to minutes.
type Histogram struct {
	counts [nBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // sum of recorded microseconds, for Mean
	max    atomic.Int64
}

const (
	subBucketBits = 6 // 64 sub-buckets: <= ~3.2% relative error
	subBuckets    = 1 << subBucketBits
	magnitudes    = 32 // covers up to ~2^36 us (~19 hours)
	nBuckets      = magnitudes * subBuckets
)

// bucketFor maps a microsecond value to a bucket index.
func bucketFor(us int64) int {
	if us < 0 {
		us = 0
	}
	if us < subBuckets {
		return int(us)
	}
	mag := bits.Len64(uint64(us)) - subBucketBits // position of leading bit above sub-bucket range
	sub := us >> uint(mag)                        // top subBucketBits bits
	idx := mag*subBuckets + int(sub)
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

// bucketMid returns a representative microsecond value for a bucket.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	mag := idx / subBuckets
	sub := int64(idx % subBuckets)
	return sub << uint(mag)
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	h.counts[bucketFor(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max returns the maximum recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Percentile returns the latency at percentile p in [0,100].
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	target := int64(p / 100 * float64(n))
	if target >= n {
		target = n - 1
	}
	var cum int64
	for i := 0; i < nBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(bucketMid(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot copies the histogram's summary statistics.
func (h *Histogram) Snapshot() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// LatencySummary is a point-in-time latency digest.
type LatencySummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// NumBuckets is the number of fixed histogram buckets (exported for callers
// that pre-size scratch arrays for HistSnapshot / summarizeBuckets work).
const NumBuckets = nBuckets

// HistSnapshot is a plain-value copy of one histogram's bucket counts, used
// by window rotation deltas and the /metrics exporter. Counts is indexed by
// the package's fixed log-bucket scheme; SumUS and MaxUS carry the exact sum
// and maximum in microseconds.
type HistSnapshot struct {
	Counts []int64
	SumUS  int64
	MaxUS  int64
}

// Summary digests a bucket snapshot into count/mean/percentiles. The maximum
// is the exact MaxUS when set, otherwise the representative value of the
// highest occupied bucket (within the bucket scheme's ~3% relative error).
func (hs HistSnapshot) Summary() LatencySummary {
	var s LatencySummary
	for _, c := range hs.Counts {
		s.Count += c
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = time.Duration(hs.SumUS/s.Count) * time.Microsecond
	s.P50 = percentileOf(hs.Counts, s.Count, 50)
	s.P95 = percentileOf(hs.Counts, s.Count, 95)
	s.P99 = percentileOf(hs.Counts, s.Count, 99)
	if hs.MaxUS > 0 {
		s.Max = time.Duration(hs.MaxUS) * time.Microsecond
	} else {
		for i := len(hs.Counts) - 1; i >= 0; i-- {
			if hs.Counts[i] > 0 {
				s.Max = time.Duration(bucketMid(i)) * time.Microsecond
				break
			}
		}
	}
	return s
}

// percentileOf walks plain bucket counts for percentile p of n observations.
func percentileOf(counts []int64, n int64, p float64) time.Duration {
	target := int64(p / 100 * float64(n))
	if target >= n {
		target = n - 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum > target {
			return time.Duration(bucketMid(i)) * time.Microsecond
		}
	}
	return 0
}

// Merge folds other into hs in place: bucket counts and latency sums add,
// the maximum takes the larger value. The receiver's Counts slice is grown
// when other covers higher buckets than hs has allocated (merging snapshots
// taken with different scratch sizes, or into a zero-value accumulator), so
// a zero HistSnapshot is a valid merge target. Both snapshots must use the
// package's fixed log-bucket scheme; because bucket boundaries are shared,
// the merge is exact — percentiles of a merged snapshot equal percentiles of
// the union population to within one bucket's resolution. This is what makes
// cluster-wide percentile aggregation possible: workers ship bucket deltas,
// never pre-digested percentiles.
func (hs *HistSnapshot) Merge(other HistSnapshot) {
	if len(other.Counts) > len(hs.Counts) {
		grown := make([]int64, len(other.Counts))
		copy(grown, hs.Counts)
		hs.Counts = grown
	}
	for i, c := range other.Counts {
		hs.Counts[i] += c
	}
	hs.SumUS += other.SumUS
	if other.MaxUS > hs.MaxUS {
		hs.MaxUS = other.MaxUS
	}
}

// Clone returns a deep copy of the snapshot (the Counts backing array is not
// shared).
func (hs HistSnapshot) Clone() HistSnapshot {
	return HistSnapshot{
		Counts: append([]int64(nil), hs.Counts...),
		SumUS:  hs.SumUS,
		MaxUS:  hs.MaxUS,
	}
}

// Histogram reconstructs a live Histogram from a snapshot (fresh, not
// shared), preserving the Global()/TypeHistogram() accessor contracts now
// that recording happens in per-worker shards.
func (hs HistSnapshot) Histogram() *Histogram {
	h := &Histogram{}
	var total int64
	for i, c := range hs.Counts {
		if c != 0 {
			h.counts[i].Store(c)
			total += c
		}
	}
	h.total.Store(total)
	h.sum.Store(hs.SumUS)
	h.max.Store(hs.MaxUS)
	return h
}

// DefaultLEBoundsUS are the coarse cumulative bucket upper bounds (in
// microseconds) the /metrics exporter publishes: 250us to 10s, roughly
// 1-2.5-5 per decade, Prometheus-style.
var DefaultLEBoundsUS = []int64{
	250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000, 2500000, 5000000, 10000000,
}

// AggregateLE folds fine-grained bucket counts into cumulative counts at the
// given upper bounds (microseconds, ascending). The returned slice has
// len(boundsUS)+1 entries; the last is the +Inf bucket (== total count).
// Each fine bucket lands in the first bound >= its representative value.
func AggregateLE(counts []int64, boundsUS []int64) []int64 {
	out := make([]int64, len(boundsUS)+1)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		mid := bucketMid(i)
		slot := len(boundsUS) // +Inf by default
		for bi, b := range boundsUS {
			if mid <= b {
				slot = bi
				break
			}
		}
		out[slot] += c
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}

// String renders the summary compactly.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		s.Count, ms(s.Mean), ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
