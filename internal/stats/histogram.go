// Package stats implements the statistics collection side of the testbed:
// latency histograms, per-transaction-type breakdowns, and per-second
// throughput series. Workers record into a Collector concurrently; the
// control API and the game read instantaneous snapshots from it.
package stats

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrent log-bucketed latency histogram (HDR-style):
// values are bucketed by magnitude with subBuckets linear sub-buckets per
// power of two, giving bounded relative error across microseconds to minutes.
type Histogram struct {
	counts [nBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // sum of recorded microseconds, for Mean
	max    atomic.Int64
}

const (
	subBucketBits = 6 // 64 sub-buckets: <= ~3.2% relative error
	subBuckets    = 1 << subBucketBits
	magnitudes    = 32 // covers up to ~2^36 us (~19 hours)
	nBuckets      = magnitudes * subBuckets
)

// bucketFor maps a microsecond value to a bucket index.
func bucketFor(us int64) int {
	if us < 0 {
		us = 0
	}
	if us < subBuckets {
		return int(us)
	}
	mag := bits.Len64(uint64(us)) - subBucketBits // position of leading bit above sub-bucket range
	sub := us >> uint(mag)                        // top subBucketBits bits
	idx := mag*subBuckets + int(sub)
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

// bucketMid returns a representative microsecond value for a bucket.
func bucketMid(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	mag := idx / subBuckets
	sub := int64(idx % subBuckets)
	return sub << uint(mag)
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	h.counts[bucketFor(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max returns the maximum recorded latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Percentile returns the latency at percentile p in [0,100].
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	target := int64(p / 100 * float64(n))
	if target >= n {
		target = n - 1
	}
	var cum int64
	for i := 0; i < nBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(bucketMid(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Snapshot copies the histogram's summary statistics.
func (h *Histogram) Snapshot() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P95:   h.Percentile(95),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// LatencySummary is a point-in-time latency digest.
type LatencySummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// String renders the summary compactly.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		s.Count, ms(s.Mean), ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
