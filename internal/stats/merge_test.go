package stats

import (
	"math/rand"
	"testing"
	"time"
)

// recordInto buckets one observation into a snapshot the same way the live
// histogram would.
func recordInto(hs *HistSnapshot, us int64) {
	if hs.Counts == nil {
		hs.Counts = make([]int64, NumBuckets)
	}
	hs.Counts[bucketFor(us)]++
	hs.SumUS += us
	if us > hs.MaxUS {
		hs.MaxUS = us
	}
}

// TestMergePercentilesMatchWholePopulation is the property the cluster merge
// rests on: because every snapshot shares the fixed log-bucket scheme,
// merging per-worker snapshots yields byte-identical bucket counts to
// recording the whole population into one snapshot — so merged percentiles
// equal whole-population percentiles exactly (and a fortiori within one
// bucket, the scheme's resolution).
func TestMergePercentilesMatchWholePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nParts := 2 + rng.Intn(6)
		parts := make([]HistSnapshot, nParts)
		var whole HistSnapshot
		n := 500 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			// Log-uniform latencies from 1us to ~100s, the histogram's
			// working range.
			us := int64(1) << uint(rng.Intn(27))
			us += rng.Int63n(us)
			recordInto(&whole, us)
			recordInto(&parts[rng.Intn(nParts)], us)
		}
		var merged HistSnapshot
		for _, p := range parts {
			merged.Merge(p)
		}
		ws, ms := whole.Summary(), merged.Summary()
		if ws != ms {
			t.Fatalf("trial %d: merged summary %+v != whole-population summary %+v", trial, ms, ws)
		}
		for i := range whole.Counts {
			if whole.Counts[i] != merged.Counts[i] {
				t.Fatalf("trial %d: bucket %d: merged %d != whole %d", trial, i, merged.Counts[i], whole.Counts[i])
			}
		}
	}
}

func TestMergeEmptySnapshots(t *testing.T) {
	var a, b HistSnapshot
	a.Merge(b)
	if s := a.Summary(); s.Count != 0 || s.P95 != 0 || s.Max != 0 {
		t.Fatalf("empty merge produced non-zero summary: %+v", s)
	}

	var populated HistSnapshot
	recordInto(&populated, 1000)
	recordInto(&populated, 2000)
	before := populated.Summary()
	populated.Merge(HistSnapshot{}) // nil Counts: must be a no-op
	if after := populated.Summary(); after != before {
		t.Fatalf("merging an empty snapshot changed the summary: %+v -> %+v", before, after)
	}

	var zero HistSnapshot
	zero.Merge(populated) // zero-value target must grow and take the content
	if got := zero.Summary(); got != before {
		t.Fatalf("merge into zero-value target: got %+v, want %+v", got, before)
	}
}

// TestMergeMismatchedLengths covers snapshots whose Counts slices differ in
// length (sparse wire decodes allocate only up to the highest occupied
// bucket): the shorter side must grow, never truncate or panic.
func TestMergeMismatchedLengths(t *testing.T) {
	short := HistSnapshot{Counts: []int64{0, 3, 1}, SumUS: 5, MaxUS: 2}
	long := HistSnapshot{Counts: make([]int64, NumBuckets), SumUS: 40000, MaxUS: 20000}
	long.Counts[bucketFor(20000)] = 2

	a := short.Clone()
	a.Merge(long)
	if len(a.Counts) != NumBuckets {
		t.Fatalf("short target did not grow: len=%d", len(a.Counts))
	}
	b := long.Clone()
	b.Merge(short)
	if len(b.Counts) != NumBuckets {
		t.Fatalf("long target changed length: len=%d", len(b.Counts))
	}
	// Merge is commutative on content.
	sa, sb := a.Summary(), b.Summary()
	if sa != sb {
		t.Fatalf("merge not commutative: %+v vs %+v", sa, sb)
	}
	if sa.Count != 6 || sa.Max != 20000*time.Microsecond {
		t.Fatalf("unexpected merged summary: %+v", sa)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	var a HistSnapshot
	recordInto(&a, 500)
	c := a.Clone()
	c.Counts[bucketFor(500)] = 99
	c.SumUS = 1
	if a.Counts[bucketFor(500)] != 1 || a.SumUS != 500 {
		t.Fatalf("clone shares state with original: %+v", a)
	}
}
