package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestARIESRoundTrip(t *testing.T) {
	upd := UpdateRec{
		TxnID: 42, PageID: 7, Slot: 3,
		Before: []byte("old image"), After: []byte("new image"),
	}
	rec, err := DecodeARIES(EncodeUpdate(upd))
	if err != nil {
		t.Fatalf("decode update: %v", err)
	}
	if rec.Kind != KindUpdate || !reflect.DeepEqual(rec.Update, upd) {
		t.Fatalf("update round trip: got %+v want %+v", rec.Update, upd)
	}

	// Empty before-image (insert) and empty after-image (delete) survive.
	for _, u := range []UpdateRec{
		{TxnID: 1, PageID: 2, Slot: 0, After: []byte("x")},
		{TxnID: 1, PageID: 2, Slot: 9, Before: []byte("x")},
	} {
		rec, err := DecodeARIES(EncodeUpdate(u))
		if err != nil {
			t.Fatalf("decode %+v: %v", u, err)
		}
		if len(rec.Update.Before) != len(u.Before) || len(rec.Update.After) != len(u.After) {
			t.Fatalf("image lengths changed: got %+v want %+v", rec.Update, u)
		}
	}

	rec, err = DecodeARIES(EncodeCommit(99))
	if err != nil {
		t.Fatalf("decode commit: %v", err)
	}
	if rec.Kind != KindCommit || rec.Commit != 99 {
		t.Fatalf("commit round trip: got %+v", rec)
	}

	ckpt := CheckpointRec{Dirty: []DirtyPage{{PageID: 1, RecLSN: 10}, {PageID: 5, RecLSN: 12}}}
	rec, err = DecodeARIES(EncodeCheckpoint(ckpt))
	if err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	if rec.Kind != KindCheckpoint || !reflect.DeepEqual(rec.Checkpoint, ckpt) {
		t.Fatalf("checkpoint round trip: got %+v want %+v", rec.Checkpoint, ckpt)
	}
	if rec, err = DecodeARIES(EncodeCheckpoint(CheckpointRec{})); err != nil || len(rec.Checkpoint.Dirty) != 0 {
		t.Fatalf("empty checkpoint: %+v, %v", rec, err)
	}
}

func TestARIESDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                           // unknown kind
		{byte(KindUpdate), 1, 2},      // short update
		{byte(KindCommit), 1, 2, 3},   // short commit
		{byte(KindCheckpoint), 1, 2},  // short checkpoint
		append(EncodeCommit(1), 0xFF), // trailing bytes
		EncodeUpdate(UpdateRec{After: []byte("x")})[:16], // truncated blob
	}
	// Absurd blob length prefix inside an update record.
	bad := EncodeUpdate(UpdateRec{TxnID: 1, PageID: 1})
	bad[15] = 0xFF // before-image length low byte -> exceeds remaining
	cases = append(cases, bad)
	// Checkpoint claiming more entries than its bytes hold.
	badCk := EncodeCheckpoint(CheckpointRec{Dirty: []DirtyPage{{PageID: 1, RecLSN: 1}}})
	badCk[1] = 200
	cases = append(cases, badCk)
	for i, c := range cases {
		if _, err := DecodeARIES(c); err == nil {
			t.Errorf("case %d (% x): decode accepted malformed payload", i, c)
		}
	}
}

func TestAppendRecordAsyncAndDurableLSN(t *testing.T) {
	var sink bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &sink})
	lsn1, err := l.AppendRecordAsync(EncodeCommit(1))
	if err != nil || lsn1 != 1 {
		t.Fatalf("async append: lsn=%d err=%v", lsn1, err)
	}
	if err := l.AppendRecord(EncodeCommit(2)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := l.DurableLSN(); got != 2 {
		t.Fatalf("DurableLSN = %d, want 2", got)
	}
	recs, err := ReadRecords(&sink)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadRecords: %d recs, %v", len(recs), err)
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("sequence: %d, %d", recs[0].Seq, recs[1].Seq)
	}
}

func TestAppendRecordAsyncGroupOrdering(t *testing.T) {
	var sink bytes.Buffer
	l := New(Options{Policy: SyncGroup, W: &sink})
	// Async updates followed by one awaited commit record: the commit's
	// durability verdict must cover the whole batch, in sequence order.
	for i := 0; i < 5; i++ {
		if _, err := l.AppendRecordAsync(EncodeUpdate(UpdateRec{TxnID: 9, PageID: uint32(i)})); err != nil {
			t.Fatalf("async append %d: %v", i, err)
		}
	}
	if err := l.AppendRecord(EncodeCommit(9)); err != nil {
		t.Fatalf("commit append: %v", err)
	}
	if got := l.DurableLSN(); got < 6 {
		t.Fatalf("DurableLSN = %d after awaited commit, want >= 6", got)
	}
	l.Close()
	recs, err := ReadRecords(&sink)
	if err != nil || len(recs) != 6 {
		t.Fatalf("ReadRecords: %d recs, %v", len(recs), err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestStartSeqContinuation(t *testing.T) {
	var first bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &first})
	for i := 0; i < 3; i++ {
		if err := l.AppendRecord(EncodeCommit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, n, err := ScanRecords(first.Bytes())
	if err != nil || len(recs) != 3 || n != first.Len() {
		t.Fatalf("scan: %d recs, clean=%d/%d, %v", len(recs), n, first.Len(), err)
	}
	// Reopen continuing from the surviving sequence; the combined byte
	// stream must scan as one consecutive log.
	var second bytes.Buffer
	l2 := New(Options{Policy: SyncNone, W: &second, StartSeq: recs[len(recs)-1].Seq})
	if err := l2.AppendRecord(EncodeCommit(7)); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]byte{}, first.Bytes()...), second.Bytes()...)
	recs, _, err = ScanRecords(combined)
	if err != nil || len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("combined scan: %d recs, %v", len(recs), err)
	}
}

func TestScanRecordsCleanPrefix(t *testing.T) {
	var sink bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &sink})
	for i := 0; i < 2; i++ {
		if err := l.AppendRecord(EncodeCommit(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	clean := sink.Len()
	sink.Write([]byte{recordMagic, 0, 0}) // torn header
	recs, n, err := ScanRecords(sink.Bytes())
	if !errors.Is(err, ErrTorn) || len(recs) != 2 || n != clean {
		t.Fatalf("torn scan: %d recs, clean=%d want %d, err=%v", len(recs), n, clean, err)
	}
}
