package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecordDecode drives the ARIES payload parser with hostile input:
// any byte string must either decode to a well-formed record or return an
// error — never panic. Well-formed seeds additionally round-trip through a
// framed log so ScanRecords' tolerance contract (torn tail vs hard error)
// is exercised on mutated frames too.
func FuzzWALRecordDecode(f *testing.F) {
	seeds := [][]byte{
		EncodeUpdate(UpdateRec{TxnID: 3, PageID: 1, Slot: 2, Before: []byte("b"), After: []byte("after-image")}),
		EncodeUpdate(UpdateRec{TxnID: 1, PageID: 0, After: bytes.Repeat([]byte{0xAB}, 100)}),
		EncodeUpdate(UpdateRec{TxnID: 1, PageID: 9, Slot: 4, Before: []byte("gone")}),
		EncodeCommit(77),
		EncodeCheckpoint(CheckpointRec{Dirty: []DirtyPage{{PageID: 2, RecLSN: 5}, {PageID: 8, RecLSN: 9}}}),
		EncodeCheckpoint(CheckpointRec{}),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)-1])    // truncated tail
		f.Add(append(s, 0x00)) // trailing byte
		f.Add(s[:1])           // kind byte only
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// Absurd length prefix inside an update record body.
	huge := EncodeUpdate(UpdateRec{TxnID: 1, PageID: 1, After: []byte("x")})
	huge[15] = 0xFF
	huge[16] = 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeARIES(payload)
		if err != nil {
			return
		}
		// A successful decode must re-encode to bytes that decode to the
		// same record (the encoders are the only writers of this format).
		var enc []byte
		switch rec.Kind {
		case KindUpdate:
			enc = EncodeUpdate(rec.Update)
		case KindCommit:
			enc = EncodeCommit(rec.Commit)
		case KindCheckpoint:
			enc = EncodeCheckpoint(rec.Checkpoint)
		default:
			t.Fatalf("decode returned unknown kind %d without error", rec.Kind)
		}
		rec2, err := DecodeARIES(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if rec2.Kind != rec.Kind {
			t.Fatalf("round trip changed kind: %d -> %d", rec.Kind, rec2.Kind)
		}

		// Frame the payload into a log and replay it: the framed path must
		// return the payload intact, and mutating any frame byte must yield
		// ErrTorn or a hard error, never a panic or silent corruption.
		var sink bytes.Buffer
		l := New(Options{Policy: SyncNone, W: &sink})
		if err := l.AppendRecord(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
		recs, _, err := ScanRecords(sink.Bytes())
		if err != nil || len(recs) != 1 || !bytes.Equal(recs[0].Payload, payload) {
			t.Fatalf("framed round trip: %d recs, err=%v", len(recs), err)
		}
		if sink.Len() > 0 {
			mut := append([]byte{}, sink.Bytes()...)
			mut[len(mut)-1] ^= 0x01
			got, _, err := ScanRecords(mut)
			if err == nil && len(got) == 1 && bytes.Equal(got[0].Payload, payload) {
				t.Fatalf("mutated frame scanned as the original record")
			}
		}
	})
}
