// ARIES-style record codec. The disk-backed storage layer logs physical
// slot-image records (before/after images keyed by page and slot), commit
// records, and fuzzy-checkpoint records through the Log's framed
// AppendRecord path; the frame sequence number doubles as the record's LSN.
// Recovery (internal/sqldb/storage/heap) replays these in three passes.
//
// Every payload is self-describing: one kind byte followed by kind-specific
// fields, all little-endian. Decode never panics on malformed input — the
// frame checksum already rejects accidental corruption, so a decode failure
// means the log prefix cannot be trusted and is surfaced as a hard error.
package wal

import (
	"encoding/binary"
	"fmt"
)

// RecKind discriminates ARIES payloads.
type RecKind uint8

const (
	// KindUpdate is a physical slot-image update: redo applies After,
	// undo restores Before. An empty Before is an insert; an empty After
	// is a delete.
	KindUpdate RecKind = 1
	// KindCommit marks a transaction's updates durable; transactions with
	// updates but no commit record are recovery losers.
	KindCommit RecKind = 2
	// KindCheckpoint is a fuzzy checkpoint: the dirty page table at the
	// moment the record was logged. It bounds the redo pass but flushes
	// nothing.
	KindCheckpoint RecKind = 3
)

// SystemTxnID is the reserved transaction id for engine-internal updates
// (catalog records). Recovery treats it as always committed: system updates
// are only logged with a durability wait, never inside a user transaction.
const SystemTxnID uint64 = 0

// UpdateRec is one physical slot-image change.
type UpdateRec struct {
	TxnID  uint64
	PageID uint32
	Slot   uint16
	// Before is the slot image prior to the change (empty for inserts);
	// After is the image the change installed (empty for deletes).
	Before, After []byte
}

// DirtyPage is one dirty-page-table entry in a checkpoint: the page and the
// LSN of the oldest update that may not yet be on disk for it.
type DirtyPage struct {
	PageID uint32
	RecLSN uint64
}

// CheckpointRec is a fuzzy checkpoint's dirty page table, sorted by PageID
// so encoding is deterministic.
type CheckpointRec struct {
	Dirty []DirtyPage
}

// ARIESRecord is one decoded payload; Kind selects which field is set.
type ARIESRecord struct {
	Kind       RecKind
	Update     UpdateRec
	Commit     uint64 // committing transaction id
	Checkpoint CheckpointRec
}

// EncodeUpdate encodes an update record payload.
func EncodeUpdate(r UpdateRec) []byte {
	b := make([]byte, 0, 1+8+4+2+4+len(r.Before)+4+len(r.After))
	b = append(b, byte(KindUpdate))
	b = binary.LittleEndian.AppendUint64(b, r.TxnID)
	b = binary.LittleEndian.AppendUint32(b, r.PageID)
	b = binary.LittleEndian.AppendUint16(b, r.Slot)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Before)))
	b = append(b, r.Before...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.After)))
	b = append(b, r.After...)
	return b
}

// EncodeCommit encodes a commit record payload.
func EncodeCommit(txnID uint64) []byte {
	b := make([]byte, 1+8)
	b[0] = byte(KindCommit)
	binary.LittleEndian.PutUint64(b[1:], txnID)
	return b
}

// EncodeCheckpoint encodes a fuzzy-checkpoint payload. The caller must pass
// the dirty page table sorted by PageID (deterministic logs are what make
// the crash-torture sweep reproducible).
func EncodeCheckpoint(r CheckpointRec) []byte {
	b := make([]byte, 0, 1+4+len(r.Dirty)*12)
	b = append(b, byte(KindCheckpoint))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Dirty)))
	for _, d := range r.Dirty {
		b = binary.LittleEndian.AppendUint32(b, d.PageID)
		b = binary.LittleEndian.AppendUint64(b, d.RecLSN)
	}
	return b
}

// DecodeARIES decodes one payload previously produced by the Encode
// functions. Malformed input returns an error, never panics; trailing bytes
// after a well-formed record are also an error (payload frames are exact).
func DecodeARIES(p []byte) (ARIESRecord, error) {
	var rec ARIESRecord
	if len(p) == 0 {
		return rec, fmt.Errorf("wal: empty ARIES payload")
	}
	rec.Kind = RecKind(p[0])
	body := p[1:]
	switch rec.Kind {
	case KindUpdate:
		if len(body) < 8+4+2+4 {
			return rec, fmt.Errorf("wal: short update record (%d bytes)", len(p))
		}
		rec.Update.TxnID = binary.LittleEndian.Uint64(body[0:8])
		rec.Update.PageID = binary.LittleEndian.Uint32(body[8:12])
		rec.Update.Slot = binary.LittleEndian.Uint16(body[12:14])
		body = body[14:]
		var err error
		if rec.Update.Before, body, err = takeBlob(body); err != nil {
			return rec, fmt.Errorf("wal: update before-image: %w", err)
		}
		if rec.Update.After, body, err = takeBlob(body); err != nil {
			return rec, fmt.Errorf("wal: update after-image: %w", err)
		}
		if len(body) != 0 {
			return rec, fmt.Errorf("wal: %d trailing bytes after update record", len(body))
		}
	case KindCommit:
		if len(body) != 8 {
			return rec, fmt.Errorf("wal: commit record is %d bytes, want 9", len(p))
		}
		rec.Commit = binary.LittleEndian.Uint64(body)
	case KindCheckpoint:
		if len(body) < 4 {
			return rec, fmt.Errorf("wal: short checkpoint record (%d bytes)", len(p))
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		body = body[4:]
		if n < 0 || n > len(body)/12 {
			return rec, fmt.Errorf("wal: checkpoint claims %d dirty pages in %d bytes", n, len(body))
		}
		if len(body) != n*12 {
			return rec, fmt.Errorf("wal: %d trailing bytes after checkpoint record", len(body)-n*12)
		}
		dirty := make([]DirtyPage, n)
		for i := 0; i < n; i++ {
			dirty[i].PageID = binary.LittleEndian.Uint32(body[i*12:])
			dirty[i].RecLSN = binary.LittleEndian.Uint64(body[i*12+4:])
		}
		rec.Checkpoint.Dirty = dirty
	default:
		return rec, fmt.Errorf("wal: unknown ARIES record kind %d", p[0])
	}
	return rec, nil
}

// takeBlob consumes a u32-length-prefixed byte blob.
func takeBlob(b []byte) (blob, rest []byte, err error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("truncated length prefix")
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if n < 0 || n > len(b)-4 {
		return nil, b, fmt.Errorf("blob length %d exceeds %d remaining bytes", n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}
