package wal

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if err := l.Append(3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if l.Records() != 0 || l.Flushes() != 0 || l.Bytes() != 0 {
		t.Fatal("nil log counters")
	}
	if l.Policy() != SyncNone {
		t.Fatal("nil log policy")
	}
}

func TestSyncNoneNeverWaits(t *testing.T) {
	l := New(Options{Policy: SyncNone})
	defer l.Close()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		l.Append(1)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("SyncNone appends took %v", d)
	}
	if l.Records() != 1000 {
		t.Fatalf("records = %d", l.Records())
	}
}

func TestSyncGroupFlushesAndReleases(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := New(Options{Policy: SyncGroup, GroupInterval: 100 * time.Microsecond, W: w})
	defer l.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Append(2)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("group-commit waiters never released")
	}
	if l.Records() != 20 {
		t.Fatalf("records = %d", l.Records())
	}
	// Group commit must batch: with 20 appends in ~one interval, the flush
	// count should be well below the record count.
	if l.Flushes() == 0 || l.Flushes() >= 20 {
		t.Fatalf("flushes = %d (batching broken)", l.Flushes())
	}
	mu.Lock()
	n := buf.Len()
	mu.Unlock()
	if n != 20*recordHeaderSize {
		t.Fatalf("flushed bytes = %d, want %d", n, 20*recordHeaderSize)
	}
}

func TestSyncAsyncDoesNotBlock(t *testing.T) {
	l := New(Options{Policy: SyncAsync, GroupInterval: time.Millisecond})
	start := time.Now()
	for i := 0; i < 100; i++ {
		l.Append(1)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("SyncAsync appends blocked: %v", d)
	}
	l.Close() // final flush
	if l.Bytes() != 100*recordHeaderSize {
		t.Fatalf("bytes = %d", l.Bytes())
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	l := New(Options{Policy: SyncGroup})
	l.Close()
	l.Close()
}

func TestPolicyString(t *testing.T) {
	if SyncNone.String() != "none" || SyncAsync.String() != "async" || SyncGroup.String() != "group" {
		t.Fatal("policy names")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// failAfter returns a writer that accepts n bytes, then fails every write
// with errDevice.
func failAfter(n int, buf *bytes.Buffer) writerFunc {
	return func(p []byte) (int, error) {
		if buf.Len()+len(p) > n {
			take := n - buf.Len()
			if take < 0 {
				take = 0
			}
			buf.Write(p[:take])
			return take, errDevice
		}
		buf.Write(p)
		return len(p), nil
	}
}

var errDevice = errors.New("wal test: device failure")

// TestGroupCommitWriteErrorPropagates is the regression test for the
// ack-on-failed-flush bug: flush() used to ignore the sink's write error and
// close the generation channel anyway, acknowledging commits whose records
// never reached the device. Every waiter of a failed flush must see the
// error, and the log must stay failed afterwards.
func TestGroupCommitWriteErrorPropagates(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	inner := failAfter(0, &buf) // device dead from the start
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return inner(p)
	})
	l := New(Options{Policy: SyncGroup, GroupInterval: 50 * time.Microsecond, W: w})
	defer l.Close()

	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- l.Append(1)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("group-commit waiter acknowledged despite failed flush")
		}
	}
	// The device failure is sticky: later appends fail immediately.
	if err := l.Append(1); err == nil {
		t.Fatal("append succeeded on a failed log")
	}
}

// TestSyncNoneWriteErrorFailsAppend pins write-through semantics: a failed
// or short write must surface on the very append that hit it, and the log
// must refuse all further appends.
func TestSyncNoneWriteErrorFailsAppend(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Policy: SyncNone, W: failAfter(recordHeaderSize+4, &buf)})
	defer l.Close()
	if err := l.Append(1); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := l.Append(1); err == nil {
		t.Fatal("append with torn write acknowledged")
	}
	if err := l.Append(1); err == nil {
		t.Fatal("append on failed log acknowledged")
	}
	if got := l.Records(); got != 1 {
		t.Fatalf("records = %d, want 1 (failed appends must not count)", got)
	}
}

// TestAppendRecordRoundTrip checks the framed payload path end to end:
// records come back in order, sequence-stamped, with payloads intact.
func TestAppendRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &buf})
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-payload")}
	for _, p := range payloads {
		if err := l.AppendRecord(p); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("read %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq = %d", i, rec.Seq)
		}
		if !bytes.Equal(rec.Payload, payloads[i]) {
			t.Fatalf("record %d: payload %q, want %q", i, rec.Payload, payloads[i])
		}
	}
}

// TestReadRecordsTornTail checks crash-recovery parsing: a log cut anywhere
// inside the final record yields the complete prefix plus ErrTorn, never a
// corrupted record.
func TestReadRecordsTornTail(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &buf})
	if err := l.AppendRecord([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendRecord([]byte("second-record")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	whole := buf.Bytes()
	firstLen := payloadHeaderSize + len("first")
	for cut := firstLen; cut < len(whole); cut++ {
		recs, err := ReadRecords(bytes.NewReader(whole[:cut]))
		if cut == firstLen {
			if err != nil {
				t.Fatalf("cut %d: clean boundary returned %v", cut, err)
			}
		} else if err != ErrTorn {
			t.Fatalf("cut %d: err = %v, want ErrTorn", cut, err)
		}
		if len(recs) != 1 || !bytes.Equal(recs[0].Payload, []byte("first")) {
			t.Fatalf("cut %d: surviving prefix = %v", cut, recs)
		}
	}
}

// TestReadRecordsRejectsCorruption checks that bit rot inside a record body
// is caught by the checksum rather than silently replayed.
func TestReadRecordsRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	l := New(Options{Policy: SyncNone, W: &buf})
	if err := l.AppendRecord([]byte("payload-to-corrupt")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	img := append([]byte(nil), buf.Bytes()...)
	img[payloadHeaderSize+3] ^= 0x40 // flip one payload bit
	if _, err := ReadRecords(bytes.NewReader(img)); err == nil {
		t.Fatal("corrupted record replayed without error")
	}
}

// TestPipelinedCommitOrdering tortures the two-generations-in-flight path: a
// deliberately slow sink guarantees that while one generation's bytes are
// being written, appenders fill and seal the next. The replayed log must
// contain every acknowledged record exactly once with strictly sequential
// numbers — ReadRecords hard-errors on any sequence jump, so an out-of-order
// or duplicated sink write cannot pass. The unguarded buffer also lets the
// race detector verify that the generation chain alone serializes writers.
func TestPipelinedCommitOrdering(t *testing.T) {
	var buf bytes.Buffer
	slow := writerFunc(func(p []byte) (int, error) {
		time.Sleep(50 * time.Microsecond) // hold the pipe so generations stack up
		return buf.Write(p)
	})
	l := New(Options{Policy: SyncGroup, GroupInterval: 50 * time.Microsecond, W: slow})

	const workers, perWorker = 8, 50
	var acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.AppendRecord([]byte{byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	l.Close()

	recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if int64(len(recs)) != acked.Load() {
		t.Fatalf("replayed %d records, acknowledged %d", len(recs), acked.Load())
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: sink bytes out of seal order", i, rec.Seq)
		}
	}
	if f := l.Flushes(); f < 2 || f >= uint64(len(recs)) {
		t.Fatalf("flushes = %d for %d records: pipeline did not batch", f, len(recs))
	}
}
