package wal

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if err := l.Append(3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if l.Records() != 0 || l.Flushes() != 0 || l.Bytes() != 0 {
		t.Fatal("nil log counters")
	}
	if l.Policy() != SyncNone {
		t.Fatal("nil log policy")
	}
}

func TestSyncNoneNeverWaits(t *testing.T) {
	l := New(Options{Policy: SyncNone})
	defer l.Close()
	start := time.Now()
	for i := 0; i < 1000; i++ {
		l.Append(1)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("SyncNone appends took %v", d)
	}
	if l.Records() != 1000 {
		t.Fatalf("records = %d", l.Records())
	}
}

func TestSyncGroupFlushesAndReleases(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := New(Options{Policy: SyncGroup, GroupInterval: 100 * time.Microsecond, W: w})
	defer l.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Append(2)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("group-commit waiters never released")
	}
	if l.Records() != 20 {
		t.Fatalf("records = %d", l.Records())
	}
	// Group commit must batch: with 20 appends in ~one interval, the flush
	// count should be well below the record count.
	if l.Flushes() == 0 || l.Flushes() >= 20 {
		t.Fatalf("flushes = %d (batching broken)", l.Flushes())
	}
	mu.Lock()
	n := buf.Len()
	mu.Unlock()
	if n != 20*recordHeaderSize {
		t.Fatalf("flushed bytes = %d, want %d", n, 20*recordHeaderSize)
	}
}

func TestSyncAsyncDoesNotBlock(t *testing.T) {
	l := New(Options{Policy: SyncAsync, GroupInterval: time.Millisecond})
	start := time.Now()
	for i := 0; i < 100; i++ {
		l.Append(1)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("SyncAsync appends blocked: %v", d)
	}
	l.Close() // final flush
	if l.Bytes() != 100*recordHeaderSize {
		t.Fatalf("bytes = %d", l.Bytes())
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	l := New(Options{Policy: SyncGroup})
	l.Close()
	l.Close()
}

func TestPolicyString(t *testing.T) {
	if SyncNone.String() != "none" || SyncAsync.String() != "async" || SyncGroup.String() != "group" {
		t.Fatal("policy names")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
