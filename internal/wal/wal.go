// Package wal implements a write-ahead log with emulated durability cost.
//
// The engine substitutes this for a real disk fsync path: commit records are
// encoded and buffered, and the configured sync policy determines how long a
// committing transaction waits. SyncGroup reproduces group commit - many
// concurrent committers share one flush - which is the dominant
// throughput/latency trade-off the BenchPress demo surfaces when a DBMS
// "struggles at maintaining the rate".
//
// SyncGroup is leader-paced rather than ticker-driven: the first committer
// after a flush becomes the group leader and flushes once the configured
// interval has elapsed since the previous flush; everyone arriving meanwhile
// waits for that flush. Timer-driven ticks cannot express sub-millisecond
// cadences on coarse-grained schedulers (a 200µs ticker fires every ~1.1ms
// on a typical Linux box), so the leader paces the sub-millisecond tail by
// yielding the processor instead of sleeping.
package wal

import (
	"encoding/binary"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects how a commit waits for durability.
type SyncPolicy uint8

const (
	// SyncNone returns immediately after writing through (no durability
	// wait, no batching).
	SyncNone SyncPolicy = iota
	// SyncAsync persists in the background; commits never wait.
	SyncAsync
	// SyncGroup makes each commit wait for the next group flush,
	// emulating batched fsync.
	SyncGroup
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAsync:
		return "async"
	case SyncGroup:
		return "group"
	default:
		return "?"
	}
}

// recordHeaderSize is the encoded size of one commit record header:
// sequence (8) + record count (4) + reserved (4).
const recordHeaderSize = 16

// spinThreshold is the remaining-wait below which the group leader paces by
// yielding instead of sleeping: timer sleeps shorter than roughly two
// milliseconds round up to the scheduler's granularity and would stretch the
// flush cadence far past the configured interval.
const spinThreshold = 2 * time.Millisecond

// Log is a write-ahead log. A nil *Log is valid and performs no work, so
// engines without durability emulation skip the whole path.
type Log struct {
	policy   SyncPolicy
	interval time.Duration
	w        io.Writer

	mu        sync.Mutex
	buf       []byte
	flushCh   chan struct{}
	leader    bool      // a group leader is pacing the next flush
	lastFlush time.Time // end of the previous flush, guarded by mu

	stop    chan struct{}
	closed  atomic.Bool
	stopped sync.WaitGroup

	seq     atomic.Uint64
	records atomic.Uint64
	flushes atomic.Uint64
	bytes   atomic.Uint64
}

// Options configures a Log.
type Options struct {
	// Policy is the durability wait mode.
	Policy SyncPolicy
	// GroupInterval is the flush cadence for SyncGroup/SyncAsync.
	// Zero defaults to 200 microseconds.
	GroupInterval time.Duration
	// W receives flushed bytes; nil discards them.
	W io.Writer
}

// New starts a log with the given options.
func New(opts Options) *Log {
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 200 * time.Microsecond
	}
	if opts.W == nil {
		opts.W = io.Discard
	}
	l := &Log{
		policy:   opts.Policy,
		interval: opts.GroupInterval,
		w:        opts.W,
		flushCh:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if l.policy == SyncAsync {
		l.stopped.Add(1)
		go func() {
			defer l.stopped.Done()
			l.flusher()
		}()
	}
	return l
}

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy {
	if l == nil {
		return SyncNone
	}
	return l.policy
}

// Append encodes one commit record covering n row writes and waits according
// to the sync policy. It is safe for concurrent use.
func (l *Log) Append(n int) error {
	if l == nil {
		return nil
	}
	seq := l.seq.Add(1)
	var rec [recordHeaderSize]byte
	binary.BigEndian.PutUint64(rec[0:8], seq)
	binary.BigEndian.PutUint32(rec[8:12], uint32(n))
	l.records.Add(1)

	if l.policy != SyncGroup {
		if l.policy == SyncNone {
			// Write through; nothing batches and nobody waits.
			l.mu.Lock()
			l.w.Write(rec[:]) // best-effort; the sink is an emulation target
			l.mu.Unlock()
			l.bytes.Add(recordHeaderSize)
			return nil
		}
		l.mu.Lock()
		l.buf = append(l.buf, rec[:]...)
		l.mu.Unlock()
		return nil // SyncAsync: the background flusher drains the buffer
	}

	l.mu.Lock()
	l.buf = append(l.buf, rec[:]...)
	ch := l.flushCh
	lead := !l.leader
	var deadline time.Time
	if lead {
		l.leader = true
		deadline = l.lastFlush.Add(l.interval)
	}
	l.mu.Unlock()

	if !lead {
		select {
		case <-ch:
		case <-l.stop:
		}
		return nil
	}
	l.pace(deadline)
	l.flush()
	return nil
}

// pace blocks the group leader until the deadline (or shutdown). Long waits
// use a timer shortened by spinThreshold; the sub-millisecond tail yields
// the processor in a loop, which keeps the flush cadence honest on
// schedulers whose shortest sleep is a millisecond while letting worker
// goroutines run between yields.
func (l *Log) pace(deadline time.Time) {
	for {
		rem := time.Until(deadline)
		if rem <= 0 {
			return
		}
		if rem > spinThreshold {
			t := time.NewTimer(rem - spinThreshold)
			select {
			case <-t.C:
			case <-l.stop:
				t.Stop()
				return
			}
			continue
		}
		select {
		case <-l.stop:
			return
		default:
		}
		runtime.Gosched()
	}
}

// flusher periodically drains the buffer (SyncAsync only).
func (l *Log) flusher() {
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flush()
		case <-l.stop:
			l.flush()
			return
		}
	}
}

// flush drains the buffer, stamps the flush time, and releases every waiter
// that appended before the drain.
func (l *Log) flush() {
	l.mu.Lock()
	buf := l.buf
	l.buf = nil
	old := l.flushCh
	l.flushCh = make(chan struct{})
	l.lastFlush = time.Now()
	l.leader = false
	l.mu.Unlock()
	if len(buf) > 0 {
		l.w.Write(buf) // best-effort; the sink is an emulation target
		l.bytes.Add(uint64(len(buf)))
		l.flushes.Add(1)
	}
	close(old)
}

// Close stops background work after a final flush and releases any
// group-commit waiters. It is idempotent.
func (l *Log) Close() {
	if l == nil || l.policy == SyncNone {
		return
	}
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	close(l.stop)
	l.stopped.Wait()
	l.flush()
}

// Records returns the number of appended commit records.
func (l *Log) Records() uint64 {
	if l == nil {
		return 0
	}
	return l.records.Load()
}

// Flushes returns the number of non-empty flushes.
func (l *Log) Flushes() uint64 {
	if l == nil {
		return 0
	}
	return l.flushes.Load()
}

// Bytes returns the number of bytes flushed.
func (l *Log) Bytes() uint64 {
	if l == nil {
		return 0
	}
	return l.bytes.Load()
}
