// Package wal implements a write-ahead log with emulated durability cost.
//
// The engine substitutes this for a real disk fsync path: commit records are
// encoded and buffered, and the configured sync policy determines how long a
// committing transaction waits. SyncGroup reproduces group commit - many
// concurrent committers share one flush tick - which is the dominant
// throughput/latency trade-off the BenchPress demo surfaces when a DBMS
// "struggles at maintaining the rate".
package wal

import (
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects how a commit waits for durability.
type SyncPolicy uint8

const (
	// SyncNone returns immediately after buffering (no durability wait).
	SyncNone SyncPolicy = iota
	// SyncAsync persists in the background; commits never wait.
	SyncAsync
	// SyncGroup makes each commit wait for the next group flush tick,
	// emulating batched fsync.
	SyncGroup
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAsync:
		return "async"
	case SyncGroup:
		return "group"
	default:
		return "?"
	}
}

// recordHeaderSize is the encoded size of one commit record header:
// sequence (8) + record count (4) + reserved (4).
const recordHeaderSize = 16

// Log is a write-ahead log. A nil *Log is valid and performs no work, so
// engines without durability emulation skip the whole path.
type Log struct {
	policy   SyncPolicy
	interval time.Duration
	w        io.Writer

	mu      sync.Mutex
	buf     []byte
	flushCh chan struct{}
	stop    chan struct{}
	stopped sync.WaitGroup

	seq     atomic.Uint64
	records atomic.Uint64
	flushes atomic.Uint64
	bytes   atomic.Uint64
}

// Options configures a Log.
type Options struct {
	// Policy is the durability wait mode.
	Policy SyncPolicy
	// GroupInterval is the flush cadence for SyncGroup/SyncAsync.
	// Zero defaults to 200 microseconds.
	GroupInterval time.Duration
	// W receives flushed bytes; nil discards them.
	W io.Writer
}

// New starts a log with the given options.
func New(opts Options) *Log {
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 200 * time.Microsecond
	}
	if opts.W == nil {
		opts.W = io.Discard
	}
	l := &Log{
		policy:   opts.Policy,
		interval: opts.GroupInterval,
		w:        opts.W,
		flushCh:  make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if l.policy != SyncNone {
		l.stopped.Add(1)
		go func() {
			defer l.stopped.Done()
			l.flusher()
		}()
	}
	return l
}

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy {
	if l == nil {
		return SyncNone
	}
	return l.policy
}

// Append encodes one commit record covering n row writes and waits according
// to the sync policy. It is safe for concurrent use.
func (l *Log) Append(n int) error {
	if l == nil {
		return nil
	}
	seq := l.seq.Add(1)
	var rec [recordHeaderSize]byte
	binary.BigEndian.PutUint64(rec[0:8], seq)
	binary.BigEndian.PutUint32(rec[8:12], uint32(n))

	l.mu.Lock()
	l.buf = append(l.buf, rec[:]...)
	ch := l.flushCh
	l.mu.Unlock()
	l.records.Add(1)

	if l.policy == SyncGroup {
		select {
		case <-ch:
		case <-l.stop:
		}
	}
	return nil
}

// flusher periodically drains the buffer and releases group-commit waiters.
func (l *Log) flusher() {
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flush()
		case <-l.stop:
			l.flush()
			return
		}
	}
}

func (l *Log) flush() {
	l.mu.Lock()
	buf := l.buf
	l.buf = nil
	old := l.flushCh
	l.flushCh = make(chan struct{})
	l.mu.Unlock()
	if len(buf) > 0 {
		l.w.Write(buf) // best-effort; the sink is an emulation target
		l.bytes.Add(uint64(len(buf)))
		l.flushes.Add(1)
	}
	close(old)
}

// Close stops the flusher after a final flush.
func (l *Log) Close() {
	if l == nil || l.policy == SyncNone {
		return
	}
	select {
	case <-l.stop:
		return // already closed
	default:
	}
	close(l.stop)
	l.stopped.Wait()
}

// Records returns the number of appended commit records.
func (l *Log) Records() uint64 {
	if l == nil {
		return 0
	}
	return l.records.Load()
}

// Flushes returns the number of non-empty flush ticks.
func (l *Log) Flushes() uint64 {
	if l == nil {
		return 0
	}
	return l.flushes.Load()
}

// Bytes returns the number of bytes flushed.
func (l *Log) Bytes() uint64 {
	if l == nil {
		return 0
	}
	return l.bytes.Load()
}
