// Package wal implements a write-ahead log with emulated durability cost.
//
// The engine substitutes this for a real disk fsync path: commit records are
// encoded and buffered, and the configured sync policy determines how long a
// committing transaction waits. SyncGroup reproduces group commit - many
// concurrent committers share one flush - which is the dominant
// throughput/latency trade-off the BenchPress demo surfaces when a DBMS
// "struggles at maintaining the rate".
//
// SyncGroup is pipelined: commits accumulate in the current generation, and
// sealing a generation immediately opens the next one, so the next batch
// fills while the previous one is being written ("fsynced"). Generations
// write in seal order - each generation's writer waits for its predecessor's
// verdict before touching the sink - so the on-disk byte order always equals
// the append sequence order even when flushes overlap with fills.
//
// Generations seal on the earlier of two triggers. (1) The configured
// interval: an append that arrives past the deadline seals inline, and the
// generation's first appender arms a backstop so a batch is never stranded —
// the interval is the hard cap on batching delay, so a lone commit always
// pays it, which is what makes a 1ms goserial feel different from a 200µs
// gomvcc. (2) Straggler quiescence: once a generation holds two or more
// records and no new append has arrived for a few tens of microseconds,
// every committer that could join the batch is already parked in it —
// benchmark terminals are closed-loop, so waiting out the rest of the
// interval cannot grow the group, it only idles the machine. This is the
// same "wait briefly for stragglers, then flush" heuristic production group
// commit uses, and it replaces the previous design's leader spin loop
// (~30% of a CPU yielding to beat the scheduler's ~1.1ms timer quantum)
// with a bounded quiescence watch.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects how a commit waits for durability.
type SyncPolicy uint8

const (
	// SyncNone returns immediately after writing through (no durability
	// wait, no batching).
	SyncNone SyncPolicy = iota
	// SyncAsync persists in the background; commits never wait.
	SyncAsync
	// SyncGroup makes each commit wait for the next group flush,
	// emulating batched fsync.
	SyncGroup
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAsync:
		return "async"
	case SyncGroup:
		return "group"
	default:
		return "?"
	}
}

// recordHeaderSize is the encoded size of one commit record header:
// sequence (8) + record count (4) + reserved (4).
const recordHeaderSize = 16

// flushGen is one group-commit generation. Everyone whose record entered the
// buffer before the seal waits on done; err carries the sink write verdict
// (set before done is closed), so a failed flush aborts every commit it
// covered instead of falsely acknowledging durability. prev chains sealed
// generations in seal order: a generation's writer waits for its
// predecessor's done before writing, which keeps sink bytes in sequence
// order while the successor generation fills concurrently.
type flushGen struct {
	prev     *flushGen     // predecessor in seal order; nil once completed
	buf      []byte        // sealed bytes, owned by the writer after seal
	sealed   chan struct{} // closed at seal time (under Log.mu)
	grown    chan struct{} // closed when the second record arrives
	done     chan struct{} // closed once err holds the write verdict
	err      error
	count    atomic.Uint32 // records in this generation
	isSealed atomic.Bool   // mirror of sealed, for cheap spin-loop checks
	paced    bool          // a backstop leader is pacing this generation
	maxSeq   uint64        // highest sequence stamped before the seal
}

// Log is a write-ahead log. A nil *Log is valid and performs no work, so
// engines without durability emulation skip the whole path.
type Log struct {
	policy   SyncPolicy
	interval time.Duration
	w        io.Writer

	mu       sync.Mutex
	buf      []byte
	gen      *flushGen // open generation accumulating appends
	lastSeal time.Time // seal time of the previous generation, guarded by mu
	// failErr is the first sink write error observed. Once set, the log is
	// dead — every subsequent append fails immediately, emulating a crashed
	// device: nothing commits after the crash point.
	failErr error

	stop    chan struct{}
	closed  atomic.Bool
	stopped sync.WaitGroup

	seq     atomic.Uint64
	durable atomic.Uint64 // highest sequence number known written to the sink
	records atomic.Uint64
	flushes atomic.Uint64
	bytes   atomic.Uint64
}

// Options configures a Log.
type Options struct {
	// Policy is the durability wait mode.
	Policy SyncPolicy
	// GroupInterval is the flush cadence for SyncGroup/SyncAsync.
	// Zero defaults to 200 microseconds.
	GroupInterval time.Duration
	// W receives flushed bytes; nil discards them.
	W io.Writer
	// StartSeq seeds the sequence counter so a log reopened after recovery
	// continues numbering where the surviving prefix left off (ReadRecords
	// requires consecutive sequence numbers across the whole file). Zero
	// starts a fresh log at sequence 1.
	StartSeq uint64
}

// New starts a log with the given options.
func New(opts Options) *Log {
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 200 * time.Microsecond
	}
	if opts.W == nil {
		opts.W = io.Discard
	}
	l := &Log{
		policy:   opts.Policy,
		interval: opts.GroupInterval,
		w:        opts.W,
		gen:      newGen(nil),
		stop:     make(chan struct{}),
	}
	l.seq.Store(opts.StartSeq)
	l.durable.Store(opts.StartSeq)
	if l.policy == SyncAsync {
		l.stopped.Add(1)
		go func() {
			defer l.stopped.Done()
			l.flusher()
		}()
	}
	return l
}

func newGen(prev *flushGen) *flushGen {
	return &flushGen{
		prev:   prev,
		sealed: make(chan struct{}),
		grown:  make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// strugglerWait is the quiescence window for early seals: once a generation
// has at least two records and no append has arrived for this long, the
// batch is considered complete and flushes without waiting out the interval.
// It only needs to exceed the inter-append gap of committers racing into the
// same group (single-digit microseconds); the interval remains the upper
// bound whenever traffic keeps trickling in.
const strugglerWait = 20 * time.Microsecond

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy {
	if l == nil {
		return SyncNone
	}
	return l.policy
}

// Append encodes one commit record covering n row writes and waits according
// to the sync policy. It is safe for concurrent use. The returned error is
// the durability verdict: non-nil means the record is not known durable and
// the caller's commit must not be acknowledged.
func (l *Log) Append(n int) error {
	if l == nil {
		return nil
	}
	var rec [recordHeaderSize]byte
	binary.BigEndian.PutUint32(rec[8:12], uint32(n))
	return l.append(rec[:], 0)
}

// recordMagic guards every payload frame so that replay can tell a torn or
// corrupt tail from a valid record.
const recordMagic = 0xB7

// payloadHeaderSize is the encoded size of one payload frame header:
// magic (1) + reserved (3) + sequence (8) + payload length (4) + FNV-32a (4).
const payloadHeaderSize = 20

// PayloadHeaderSize is the frame-header size of AppendRecord framing. The
// crash harness uses it to locate payload bytes inside a captured sink image
// when picking kill points that tear specific record kinds.
const PayloadHeaderSize = payloadHeaderSize

// Record is one decoded payload frame.
type Record struct {
	// Seq is the append sequence number (1-based, consecutive).
	Seq uint64
	// Payload is the application bytes handed to AppendRecord.
	Payload []byte
}

// AppendRecord writes one framed, checksummed payload record and waits for
// durability per the sync policy, exactly like Append. Logs written with
// AppendRecord can be replayed with ReadRecords; the two framings must not be
// mixed in one log.
func (l *Log) AppendRecord(payload []byte) error {
	if l == nil {
		return nil
	}
	frame := make([]byte, payloadHeaderSize+len(payload))
	frame[0] = recordMagic
	binary.BigEndian.PutUint32(frame[12:16], uint32(len(payload)))
	h := fnv.New32a()
	h.Write(payload)
	binary.BigEndian.PutUint32(frame[16:20], h.Sum32())
	copy(frame[payloadHeaderSize:], payload)
	return l.append(frame, 4)
}

// AppendRecordAsync writes one framed record like AppendRecord but never
// waits for a flush: under SyncGroup and SyncAsync the bytes join the open
// generation's buffer and ride whichever flush seals it. It returns the
// record's sequence number (its LSN). The caller buys durability later by
// awaiting a subsequent AppendRecord — sink bytes are written in sequence
// order, so a durable successor implies every predecessor reached the sink.
// The disk engine uses this to log a transaction's slot-image updates
// without paying one group-commit wait per record; the commit record's
// AppendRecord verdict then covers the whole batch.
func (l *Log) AppendRecordAsync(payload []byte) (uint64, error) {
	if l == nil {
		return 0, nil
	}
	frame := make([]byte, payloadHeaderSize+len(payload))
	frame[0] = recordMagic
	binary.BigEndian.PutUint32(frame[12:16], uint32(len(payload)))
	h := fnv.New32a()
	h.Write(payload)
	binary.BigEndian.PutUint32(frame[16:20], h.Sum32())
	copy(frame[payloadHeaderSize:], payload)

	l.mu.Lock()
	if err := l.failErr; err != nil {
		l.mu.Unlock()
		return 0, err
	}
	seq := l.seq.Add(1)
	binary.BigEndian.PutUint64(frame[4:12], seq)
	if l.policy == SyncNone {
		// Write through, as AppendRecord would: the verdict is synchronous.
		err := writeAll(l.w, frame)
		l.failErr = err
		if err == nil {
			l.durable.Store(seq)
		}
		l.mu.Unlock()
		if err != nil {
			return 0, err
		}
	} else {
		l.buf = append(l.buf, frame...)
		l.mu.Unlock()
	}
	l.records.Add(1)
	if l.policy == SyncNone {
		l.bytes.Add(uint64(len(frame)))
	}
	return seq, nil
}

// Flush forces buffered records to the sink and returns the write verdict,
// regardless of policy. The disk engine uses it as a durability barrier for
// rare out-of-band records (DDL catalog writes, WAL-before-data fallbacks);
// commits keep riding the group pipeline.
func (l *Log) Flush() error {
	if l == nil {
		return nil
	}
	if l.policy == SyncNone {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.failErr // SyncNone writes through: nothing is buffered
	}
	l.mu.Lock()
	g := l.gen
	l.sealLocked()
	l.mu.Unlock()
	l.complete(g)
	return g.err
}

// DurableLSN returns the highest sequence number known written to the sink.
// The buffer pool's WAL-before-data check compares a dirty page's LSN
// against it before the page may be evicted.
func (l *Log) DurableLSN() uint64 {
	if l == nil {
		return 0
	}
	return l.durable.Load()
}

// append routes one encoded record through the configured sync policy.
// seqOff is the header offset of the 8-byte sequence field, stamped under
// l.mu so that buffer order and sequence order always agree (the checksum
// covers only the payload, so late stamping is safe).
func (l *Log) append(rec []byte, seqOff int) error {
	if l.policy != SyncGroup {
		if l.policy == SyncNone {
			// Write through; nothing batches and nobody waits, but the
			// write's verdict is the caller's durability verdict.
			l.mu.Lock()
			err := l.failErr
			if err == nil {
				seq := l.seq.Add(1)
				binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], seq)
				err = writeAll(l.w, rec)
				l.failErr = err
				if err == nil {
					l.durable.Store(seq)
				}
			}
			l.mu.Unlock()
			if err != nil {
				return err
			}
			l.records.Add(1)
			l.bytes.Add(uint64(len(rec)))
			return nil
		}
		l.mu.Lock()
		err := l.failErr
		if err == nil {
			binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], l.seq.Add(1))
			l.buf = append(l.buf, rec...)
			l.records.Add(1)
		}
		l.mu.Unlock()
		return err // SyncAsync: the background flusher drains the buffer
	}

	l.mu.Lock()
	if err := l.failErr; err != nil {
		l.mu.Unlock()
		return err
	}
	binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], l.seq.Add(1))
	l.buf = append(l.buf, rec...)
	l.records.Add(1)
	g := l.gen
	if g.count.Add(1) == 2 {
		close(g.grown) // wake the backstop leader's straggler watch
	}
	deadline := l.lastSeal.Add(l.interval)
	if !time.Now().Before(deadline) {
		// This append crossed the flush deadline: seal inline and become
		// the generation's writer, with no pacing at all.
		l.sealLocked()
		l.mu.Unlock()
		l.complete(g)
		return g.err
	}
	lead := !g.paced
	if lead {
		g.paced = true
	}
	l.mu.Unlock()

	if lead {
		return l.lead(g, deadline)
	}
	select {
	case <-g.done:
		return g.err
	case <-l.stop:
	}
	return nil
}

// leadSpinWindow bounds how much of the lone leader's interval wait runs as
// a yield loop instead of a timer sleep. Timer sleeps below roughly two
// milliseconds round up to the scheduler quantum — longer than every
// configured group interval, which is exactly what a lone committer's
// latency is made of — so the final stretch before the deadline is always
// yielded through: a lone committer is typically the only runnable
// goroutine in that regime, making the yields free. Intervals longer than
// the window still sleep through their bulk and only spin the tail.
const leadSpinWindow = 2 * time.Millisecond

// lead runs the generation's backstop leader: its first appender, charged
// with making sure the batch eventually seals. While the leader is alone it
// waits out the interval — a lone commit owes the full flush cadence —
// sleeping through all but the last leadSpinWindow of it and yielding the
// rest, so the seal lands on the deadline instead of a timer quantum past
// it. Once a second record arrives the leader switches to the straggler
// watch: it yields the processor in a loop, and when no new record has
// appeared for strugglerWait — every closed-loop committer is already
// parked in the batch — or the deadline passes, it seals. The watch costs a
// bounded few tens of microseconds per flush, and only when the leader
// actually has company.
func (l *Log) lead(g *flushGen, deadline time.Time) error {
	if g.count.Load() < 2 && !g.isSealed.Load() {
		if rem := time.Until(deadline); rem > leadSpinWindow {
			t := time.NewTimer(rem - leadSpinWindow)
			select {
			case <-g.grown:
				t.Stop()
			case <-g.sealed:
				t.Stop()
			case <-t.C:
			case <-l.stop:
				t.Stop()
			}
		}
		for g.count.Load() < 2 && !g.isSealed.Load() && !l.closed.Load() &&
			time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	last := g.count.Load()
	quiet := time.Now()
	for !g.isSealed.Load() && !l.closed.Load() {
		now := time.Now()
		if n := g.count.Load(); n != last {
			last, quiet = n, now
		} else if now.Sub(quiet) >= strugglerWait || !now.Before(deadline) {
			break
		}
		runtime.Gosched()
	}
	if l.sealIfOpen(g) {
		l.complete(g)
		return g.err
	}
	select {
	case <-g.done:
		return g.err
	case <-l.stop:
	}
	return nil
}

// sealLocked seals the open generation: it takes ownership of the buffered
// bytes, opens a successor chained behind it, and stamps the seal time that
// paces the next deadline. Callers hold l.mu and must call complete on the
// sealed generation after unlocking.
func (l *Log) sealLocked() {
	g := l.gen
	g.buf = l.buf
	g.maxSeq = l.seq.Load()
	l.buf = nil
	l.gen = newGen(g)
	l.lastSeal = time.Now()
	g.isSealed.Store(true)
	close(g.sealed)
}

// sealIfOpen seals g if it is still the open generation and reports whether
// the caller became its writer.
func (l *Log) sealIfOpen(g *flushGen) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != g {
		return false
	}
	l.sealLocked()
	return true
}

// complete writes a sealed generation's bytes and publishes the verdict.
// It first waits for the predecessor generation so sink writes happen in
// seal (= sequence) order; the open generation keeps filling meanwhile,
// which is the commit pipeline. failErr is set before done is closed, so a
// successor can never write past a dead device.
func (l *Log) complete(g *flushGen) {
	if g.prev != nil {
		<-g.prev.done
		g.prev = nil
	}
	l.mu.Lock()
	err := l.failErr
	l.mu.Unlock()
	if err == nil && len(g.buf) > 0 {
		if err = writeAll(l.w, g.buf); err != nil {
			l.mu.Lock()
			if l.failErr == nil {
				l.failErr = err
			}
			l.mu.Unlock()
		} else {
			l.bytes.Add(uint64(len(g.buf)))
			l.flushes.Add(1)
		}
	}
	if err == nil {
		// Generations complete in seal order, so maxSeq is nondecreasing
		// here; every record at or below it has reached the sink.
		l.durable.Store(g.maxSeq)
	}
	g.err = err
	g.buf = nil
	close(g.done)
}

// writeAll drives w.Write to completion, converting short writes into errors.
func writeAll(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return err
}

// flusher periodically drains the buffer (SyncAsync only).
func (l *Log) flusher() {
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flushNow()
		case <-l.stop:
			l.flushNow()
			return
		}
	}
}

// flushNow seals the current generation and completes it synchronously.
func (l *Log) flushNow() {
	l.mu.Lock()
	g := l.gen
	l.sealLocked()
	l.mu.Unlock()
	l.complete(g)
}

// Close stops background work after a final flush and releases any
// group-commit waiters. It is idempotent.
func (l *Log) Close() {
	if l == nil || l.policy == SyncNone {
		return
	}
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	close(l.stop)
	l.stopped.Wait()
	l.flushNow()
}

// Records returns the number of appended commit records.
func (l *Log) Records() uint64 {
	if l == nil {
		return 0
	}
	return l.records.Load()
}

// Flushes returns the number of non-empty flushes.
func (l *Log) Flushes() uint64 {
	if l == nil {
		return 0
	}
	return l.flushes.Load()
}

// Bytes returns the number of bytes flushed.
func (l *Log) Bytes() uint64 {
	if l == nil {
		return 0
	}
	return l.bytes.Load()
}

// ErrTorn reports that a log ended in a torn (incomplete or checksum-corrupt)
// record, as a crash mid-write leaves behind. ReadRecords returns it together
// with every complete record that precedes the tear.
var ErrTorn = errors.New("wal: torn record at end of log")

// ReadRecords decodes a log written with AppendRecord. It returns every
// complete, checksum-valid record in append order. A torn tail — the normal
// residue of a crash between or during sink writes — yields ErrTorn alongside
// the intact prefix; any malformation that cannot be a simple tear (bad magic
// with more data following, out-of-order sequence numbers) is a hard error,
// because it means the prefix itself cannot be trusted.
func ReadRecords(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	recs, _, err := ScanRecords(data)
	return recs, err
}

// ScanRecords is ReadRecords over in-memory bytes; it additionally returns
// the byte length of the clean prefix — everything before the first tear.
// Recovery truncates the log file to that length before reopening it for
// appends, so a later replay never runs into mid-file torn garbage.
func ScanRecords(data []byte) ([]Record, int, error) {
	var recs []Record
	off := 0
	var lastSeq uint64
	for off < len(data) {
		if len(data)-off < payloadHeaderSize {
			return recs, off, ErrTorn
		}
		hdr := data[off : off+payloadHeaderSize]
		if hdr[0] != recordMagic {
			return recs, off, fmt.Errorf("wal: bad record magic 0x%02x at offset %d", hdr[0], off)
		}
		seq := binary.BigEndian.Uint64(hdr[4:12])
		plen := int(binary.BigEndian.Uint32(hdr[12:16]))
		sum := binary.BigEndian.Uint32(hdr[16:20])
		if len(data)-off-payloadHeaderSize < plen {
			return recs, off, ErrTorn
		}
		payload := data[off+payloadHeaderSize : off+payloadHeaderSize+plen]
		h := fnv.New32a()
		h.Write(payload)
		if h.Sum32() != sum {
			return recs, off, ErrTorn
		}
		if seq != lastSeq+1 {
			return recs, off, fmt.Errorf("wal: record sequence jump %d -> %d at offset %d", lastSeq, seq, off)
		}
		lastSeq = seq
		recs = append(recs, Record{Seq: seq, Payload: payload})
		off += payloadHeaderSize + plen
	}
	return recs, off, nil
}
