// Package wal implements a write-ahead log with emulated durability cost.
//
// The engine substitutes this for a real disk fsync path: commit records are
// encoded and buffered, and the configured sync policy determines how long a
// committing transaction waits. SyncGroup reproduces group commit - many
// concurrent committers share one flush - which is the dominant
// throughput/latency trade-off the BenchPress demo surfaces when a DBMS
// "struggles at maintaining the rate".
//
// SyncGroup is leader-paced rather than ticker-driven: the first committer
// after a flush becomes the group leader and flushes once the configured
// interval has elapsed since the previous flush; everyone arriving meanwhile
// waits for that flush. Timer-driven ticks cannot express sub-millisecond
// cadences on coarse-grained schedulers (a 200µs ticker fires every ~1.1ms
// on a typical Linux box), so the leader paces the sub-millisecond tail by
// yielding the processor instead of sleeping.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects how a commit waits for durability.
type SyncPolicy uint8

const (
	// SyncNone returns immediately after writing through (no durability
	// wait, no batching).
	SyncNone SyncPolicy = iota
	// SyncAsync persists in the background; commits never wait.
	SyncAsync
	// SyncGroup makes each commit wait for the next group flush,
	// emulating batched fsync.
	SyncGroup
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAsync:
		return "async"
	case SyncGroup:
		return "group"
	default:
		return "?"
	}
}

// recordHeaderSize is the encoded size of one commit record header:
// sequence (8) + record count (4) + reserved (4).
const recordHeaderSize = 16

// spinThreshold is the remaining-wait below which the group leader paces by
// yielding instead of sleeping: timer sleeps shorter than roughly two
// milliseconds round up to the scheduler's granularity and would stretch the
// flush cadence far past the configured interval.
const spinThreshold = 2 * time.Millisecond

// flushGen is one group-commit generation: everyone whose record entered the
// buffer before a flush waits on done; err carries the sink write error of
// that flush (set before done is closed), so a failed flush aborts every
// commit it covered instead of falsely acknowledging durability.
type flushGen struct {
	done chan struct{}
	err  error
}

// Log is a write-ahead log. A nil *Log is valid and performs no work, so
// engines without durability emulation skip the whole path.
type Log struct {
	policy   SyncPolicy
	interval time.Duration
	w        io.Writer

	mu        sync.Mutex
	buf       []byte
	gen       *flushGen
	leader    bool      // a group leader is pacing the next flush
	lastFlush time.Time // end of the previous flush, guarded by mu
	// failErr is the first sink write error observed. Once set, the log is
	// dead — every subsequent append fails immediately, emulating a crashed
	// device: nothing commits after the crash point.
	failErr error

	stop    chan struct{}
	closed  atomic.Bool
	stopped sync.WaitGroup

	seq     atomic.Uint64
	records atomic.Uint64
	flushes atomic.Uint64
	bytes   atomic.Uint64
}

// Options configures a Log.
type Options struct {
	// Policy is the durability wait mode.
	Policy SyncPolicy
	// GroupInterval is the flush cadence for SyncGroup/SyncAsync.
	// Zero defaults to 200 microseconds.
	GroupInterval time.Duration
	// W receives flushed bytes; nil discards them.
	W io.Writer
}

// New starts a log with the given options.
func New(opts Options) *Log {
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 200 * time.Microsecond
	}
	if opts.W == nil {
		opts.W = io.Discard
	}
	l := &Log{
		policy:   opts.Policy,
		interval: opts.GroupInterval,
		w:        opts.W,
		gen:      &flushGen{done: make(chan struct{})},
		stop:     make(chan struct{}),
	}
	if l.policy == SyncAsync {
		l.stopped.Add(1)
		go func() {
			defer l.stopped.Done()
			l.flusher()
		}()
	}
	return l
}

// Policy returns the log's sync policy.
func (l *Log) Policy() SyncPolicy {
	if l == nil {
		return SyncNone
	}
	return l.policy
}

// Append encodes one commit record covering n row writes and waits according
// to the sync policy. It is safe for concurrent use. The returned error is
// the durability verdict: non-nil means the record is not known durable and
// the caller's commit must not be acknowledged.
func (l *Log) Append(n int) error {
	if l == nil {
		return nil
	}
	var rec [recordHeaderSize]byte
	binary.BigEndian.PutUint32(rec[8:12], uint32(n))
	return l.append(rec[:], 0)
}

// recordMagic guards every payload frame so that replay can tell a torn or
// corrupt tail from a valid record.
const recordMagic = 0xB7

// payloadHeaderSize is the encoded size of one payload frame header:
// magic (1) + reserved (3) + sequence (8) + payload length (4) + FNV-32a (4).
const payloadHeaderSize = 20

// Record is one decoded payload frame.
type Record struct {
	// Seq is the append sequence number (1-based, consecutive).
	Seq uint64
	// Payload is the application bytes handed to AppendRecord.
	Payload []byte
}

// AppendRecord writes one framed, checksummed payload record and waits for
// durability per the sync policy, exactly like Append. Logs written with
// AppendRecord can be replayed with ReadRecords; the two framings must not be
// mixed in one log.
func (l *Log) AppendRecord(payload []byte) error {
	if l == nil {
		return nil
	}
	frame := make([]byte, payloadHeaderSize+len(payload))
	frame[0] = recordMagic
	binary.BigEndian.PutUint32(frame[12:16], uint32(len(payload)))
	h := fnv.New32a()
	h.Write(payload)
	binary.BigEndian.PutUint32(frame[16:20], h.Sum32())
	copy(frame[payloadHeaderSize:], payload)
	return l.append(frame, 4)
}

// append routes one encoded record through the configured sync policy.
// seqOff is the header offset of the 8-byte sequence field, stamped under
// l.mu so that buffer order and sequence order always agree (the checksum
// covers only the payload, so late stamping is safe).
func (l *Log) append(rec []byte, seqOff int) error {
	if l.policy != SyncGroup {
		if l.policy == SyncNone {
			// Write through; nothing batches and nobody waits, but the
			// write's verdict is the caller's durability verdict.
			l.mu.Lock()
			err := l.failErr
			if err == nil {
				binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], l.seq.Add(1))
				err = writeAll(l.w, rec)
				l.failErr = err
			}
			l.mu.Unlock()
			if err != nil {
				return err
			}
			l.records.Add(1)
			l.bytes.Add(uint64(len(rec)))
			return nil
		}
		l.mu.Lock()
		err := l.failErr
		if err == nil {
			binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], l.seq.Add(1))
			l.buf = append(l.buf, rec...)
			l.records.Add(1)
		}
		l.mu.Unlock()
		return err // SyncAsync: the background flusher drains the buffer
	}

	l.mu.Lock()
	if err := l.failErr; err != nil {
		l.mu.Unlock()
		return err
	}
	binary.BigEndian.PutUint64(rec[seqOff:seqOff+8], l.seq.Add(1))
	l.buf = append(l.buf, rec...)
	l.records.Add(1)
	gen := l.gen
	lead := !l.leader
	var deadline time.Time
	if lead {
		l.leader = true
		deadline = l.lastFlush.Add(l.interval)
	}
	l.mu.Unlock()

	if !lead {
		select {
		case <-gen.done:
			return gen.err
		case <-l.stop:
		}
		return nil
	}
	l.pace(deadline)
	l.flush()
	return gen.err
}

// writeAll drives w.Write to completion, converting short writes into errors.
func writeAll(w io.Writer, p []byte) error {
	n, err := w.Write(p)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return err
}

// pace blocks the group leader until the deadline (or shutdown). Long waits
// use a timer shortened by spinThreshold; the sub-millisecond tail yields
// the processor in a loop, which keeps the flush cadence honest on
// schedulers whose shortest sleep is a millisecond while letting worker
// goroutines run between yields.
func (l *Log) pace(deadline time.Time) {
	for {
		rem := time.Until(deadline)
		if rem <= 0 {
			return
		}
		if rem > spinThreshold {
			t := time.NewTimer(rem - spinThreshold)
			select {
			case <-t.C:
			case <-l.stop:
				t.Stop()
				return
			}
			continue
		}
		select {
		case <-l.stop:
			return
		default:
		}
		runtime.Gosched()
	}
}

// flusher periodically drains the buffer (SyncAsync only).
func (l *Log) flusher() {
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.flush()
		case <-l.stop:
			l.flush()
			return
		}
	}
}

// flush drains the buffer, stamps the flush time, and releases every waiter
// that appended before the drain, handing them the sink write's verdict: a
// failed flush must abort the commits it covered, never acknowledge them.
func (l *Log) flush() {
	l.mu.Lock()
	buf := l.buf
	l.buf = nil
	old := l.gen
	l.gen = &flushGen{done: make(chan struct{})}
	l.lastFlush = time.Now()
	l.leader = false
	already := l.failErr
	l.mu.Unlock()
	if len(buf) > 0 {
		err := already
		if err == nil {
			err = writeAll(l.w, buf)
		}
		if err != nil {
			old.err = err
			l.mu.Lock()
			if l.failErr == nil {
				l.failErr = err
			}
			l.mu.Unlock()
		} else {
			l.bytes.Add(uint64(len(buf)))
			l.flushes.Add(1)
		}
	}
	close(old.done)
}

// Close stops background work after a final flush and releases any
// group-commit waiters. It is idempotent.
func (l *Log) Close() {
	if l == nil || l.policy == SyncNone {
		return
	}
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	close(l.stop)
	l.stopped.Wait()
	l.flush()
}

// Records returns the number of appended commit records.
func (l *Log) Records() uint64 {
	if l == nil {
		return 0
	}
	return l.records.Load()
}

// Flushes returns the number of non-empty flushes.
func (l *Log) Flushes() uint64 {
	if l == nil {
		return 0
	}
	return l.flushes.Load()
}

// Bytes returns the number of bytes flushed.
func (l *Log) Bytes() uint64 {
	if l == nil {
		return 0
	}
	return l.bytes.Load()
}

// ErrTorn reports that a log ended in a torn (incomplete or checksum-corrupt)
// record, as a crash mid-write leaves behind. ReadRecords returns it together
// with every complete record that precedes the tear.
var ErrTorn = errors.New("wal: torn record at end of log")

// ReadRecords decodes a log written with AppendRecord. It returns every
// complete, checksum-valid record in append order. A torn tail — the normal
// residue of a crash between or during sink writes — yields ErrTorn alongside
// the intact prefix; any malformation that cannot be a simple tear (bad magic
// with more data following, out-of-order sequence numbers) is a hard error,
// because it means the prefix itself cannot be trusted.
func ReadRecords(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	off := 0
	var lastSeq uint64
	for off < len(data) {
		if len(data)-off < payloadHeaderSize {
			return recs, ErrTorn
		}
		hdr := data[off : off+payloadHeaderSize]
		if hdr[0] != recordMagic {
			return recs, fmt.Errorf("wal: bad record magic 0x%02x at offset %d", hdr[0], off)
		}
		seq := binary.BigEndian.Uint64(hdr[4:12])
		plen := int(binary.BigEndian.Uint32(hdr[12:16]))
		sum := binary.BigEndian.Uint32(hdr[16:20])
		if len(data)-off-payloadHeaderSize < plen {
			return recs, ErrTorn
		}
		payload := data[off+payloadHeaderSize : off+payloadHeaderSize+plen]
		h := fnv.New32a()
		h.Write(payload)
		if h.Sum32() != sum {
			return recs, ErrTorn
		}
		if seq != lastSeq+1 {
			return recs, fmt.Errorf("wal: record sequence jump %d -> %d at offset %d", lastSeq, seq, off)
		}
		lastSeq = seq
		recs = append(recs, Record{Seq: seq, Payload: payload})
		off += payloadHeaderSize + plen
	}
	return recs, nil
}
