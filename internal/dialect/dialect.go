// Package dialect implements OLTP-Bench's human-written SQL dialect
// management. The framework stores each statement under a stable id with a
// canonical SQL text; per-DBMS dialects override individual statements with
// hand-tuned variants, exactly as the paper describes ("we allow experts for
// individual systems to contribute specific SQL variants both for DML and
// DDL queries").
//
// Dialects also provide mechanical DDL rewriting (type-name mapping), since
// benchmark schemas are written once in a canonical dialect and ported.
package dialect

import (
	"regexp"
	"strings"
	"sync"
)

// Statement is one named SQL statement with per-dialect overrides.
type Statement struct {
	ID        string
	Canonical string
	overrides map[string]string
}

// Catalog holds the statements of one benchmark and the dialect rewrites.
type Catalog struct {
	mu    sync.RWMutex
	stmts map[string]*Statement
}

// NewCatalog returns an empty statement catalog.
func NewCatalog() *Catalog {
	return &Catalog{stmts: map[string]*Statement{}}
}

// Register adds a canonical statement under id, returning the id for
// convenient inline use.
func (c *Catalog) Register(id, sql string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stmts[id] = &Statement{ID: id, Canonical: sql, overrides: map[string]string{}}
	return id
}

// Override installs a dialect-specific variant of a registered statement.
func (c *Catalog) Override(id, dialect, sql string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stmts[id]; ok {
		st.overrides[strings.ToLower(dialect)] = sql
	}
}

// SQL resolves the statement text for a dialect, falling back to the
// canonical form, and applies the dialect's mechanical rewrites.
func (c *Catalog) SQL(id, dialectName string) (string, bool) {
	c.mu.RLock()
	st, ok := c.stmts[id]
	c.mu.RUnlock()
	if !ok {
		return "", false
	}
	if sql, ok := st.overrides[strings.ToLower(dialectName)]; ok {
		return sql, true
	}
	return Rewrite(st.Canonical, dialectName), true
}

// IDs lists the registered statement ids.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.stmts))
	for id := range c.stmts {
		ids = append(ids, id)
	}
	return ids
}

// rule is one mechanical rewrite.
type rule struct {
	re   *regexp.Regexp
	repl string
}

// dialectRules maps a dialect name to its mechanical DDL/DML rewrites. The
// embedded engine accepts the canonical dialect natively; these rules model
// the porting work the paper describes and are exercised by tests and the
// dialect-dump tool so contributed variants stay comparable.
var dialectRules = map[string][]rule{
	// The canonical dialect used by the embedded engines: no rewrites.
	"gosql": nil,
	// A MySQL-flavoured target.
	"mysql": {
		{regexp.MustCompile(`(?i)\bCLOB\b`), "LONGTEXT"},
		{regexp.MustCompile(`(?i)\bDOUBLE PRECISION\b`), "DOUBLE"},
		{regexp.MustCompile(`(?i)\bBOOLEAN\b`), "TINYINT"},
		{regexp.MustCompile(`(?i)\bFETCH FIRST (\d+) ROWS ONLY\b`), "LIMIT $1"},
	},
	// A PostgreSQL-flavoured target.
	"postgres": {
		{regexp.MustCompile(`(?i)\bCLOB\b`), "TEXT"},
		{regexp.MustCompile(`(?i)\bDATETIME\b`), "TIMESTAMP"},
		{regexp.MustCompile(`(?i)\bAUTO_INCREMENT\b`), ""},
		{regexp.MustCompile(`(?i)\bTINYINT\b`), "SMALLINT"},
	},
	// A Derby-flavoured target (no LIMIT syntax).
	"derby": {
		{regexp.MustCompile(`(?i)\bLIMIT (\d+)\b`), "FETCH FIRST $1 ROWS ONLY"},
		{regexp.MustCompile(`(?i)\bTINYINT\b`), "SMALLINT"},
		{regexp.MustCompile(`(?i)\bDATETIME\b`), "TIMESTAMP"},
	},
}

// Rewrite applies a dialect's mechanical rules to sql. Unknown dialects get
// the canonical text unchanged.
func Rewrite(sql, dialectName string) string {
	rules, ok := dialectRules[strings.ToLower(dialectName)]
	if !ok {
		return sql
	}
	for _, r := range rules {
		sql = r.re.ReplaceAllString(sql, r.repl)
	}
	return sql
}

// Known reports whether a dialect has registered rewrite rules.
func Known(dialectName string) bool {
	_, ok := dialectRules[strings.ToLower(dialectName)]
	return ok
}

// Names lists the known dialects.
func Names() []string {
	names := make([]string, 0, len(dialectRules))
	for n := range dialectRules {
		names = append(names, n)
	}
	return names
}
