package dialect

import (
	"strings"
	"testing"
)

func TestRegisterAndResolve(t *testing.T) {
	c := NewCatalog()
	id := c.Register("getUser", "SELECT * FROM users WHERE id = ?")
	if id != "getUser" {
		t.Fatalf("id = %q", id)
	}
	sql, ok := c.SQL("getUser", "gosql")
	if !ok || sql != "SELECT * FROM users WHERE id = ?" {
		t.Fatalf("sql = %q ok=%v", sql, ok)
	}
	if _, ok := c.SQL("missing", "gosql"); ok {
		t.Fatal("missing statement resolved")
	}
}

func TestOverrideWinsOverRewrite(t *testing.T) {
	c := NewCatalog()
	c.Register("q", "SELECT a FROM t LIMIT 5")
	c.Override("q", "derby", "SELECT a FROM t FETCH FIRST 5 ROWS ONLY -- expert variant")
	sql, _ := c.SQL("q", "derby")
	if !strings.Contains(sql, "expert variant") {
		t.Fatalf("override not used: %q", sql)
	}
	// Other dialects still get the canonical (possibly rewritten) form.
	sql, _ = c.SQL("q", "mysql")
	if !strings.Contains(sql, "LIMIT 5") {
		t.Fatalf("mysql variant = %q", sql)
	}
}

func TestMechanicalRewrites(t *testing.T) {
	cases := []struct {
		dialect string
		in      string
		want    string
	}{
		{"mysql", "CREATE TABLE t (d CLOB)", "CREATE TABLE t (d LONGTEXT)"},
		{"mysql", "x DOUBLE PRECISION", "x DOUBLE"},
		{"mysql", "SELECT a FROM t FETCH FIRST 10 ROWS ONLY", "SELECT a FROM t LIMIT 10"},
		{"postgres", "CREATE TABLE t (d CLOB)", "CREATE TABLE t (d TEXT)"},
		{"postgres", "ts DATETIME", "ts TIMESTAMP"},
		{"derby", "SELECT a FROM t LIMIT 3", "SELECT a FROM t FETCH FIRST 3 ROWS ONLY"},
		{"gosql", "SELECT a FROM t LIMIT 3", "SELECT a FROM t LIMIT 3"},
		{"unknown-dbms", "SELECT 1 FROM t", "SELECT 1 FROM t"},
	}
	for _, tc := range cases {
		if got := Rewrite(tc.in, tc.dialect); got != tc.want {
			t.Errorf("Rewrite(%q, %s) = %q, want %q", tc.in, tc.dialect, got, tc.want)
		}
	}
}

func TestKnownAndNames(t *testing.T) {
	for _, d := range []string{"gosql", "mysql", "postgres", "derby"} {
		if !Known(d) {
			t.Errorf("Known(%s) = false", d)
		}
	}
	if Known("oracle12c") {
		t.Error("unexpected dialect known")
	}
	if len(Names()) < 4 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestIDs(t *testing.T) {
	c := NewCatalog()
	c.Register("a", "SELECT 1 FROM t")
	c.Register("b", "SELECT 2 FROM t")
	if len(c.IDs()) != 2 {
		t.Fatalf("IDs = %v", c.IDs())
	}
}
