package config

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sampleXML = `
<parameters>
  <benchmark>tpcc</benchmark>
  <dbtype>gomvcc</dbtype>
  <scalefactor>2</scalefactor>
  <terminals>8</terminals>
  <isolation>snapshot</isolation>
  <works>
    <work>
      <time>60</time>
      <rate>1000</rate>
      <weights>45,43,4,4,4</weights>
      <arrival>exponential</arrival>
      <thinktime>5</thinktime>
    </work>
    <work>
      <time>30</time>
      <rate>unlimited</rate>
      <weights>100,0,0,0,0</weights>
    </work>
  </works>
</parameters>`

func TestParse(t *testing.T) {
	wl, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Benchmark != "tpcc" || wl.DBType != "gomvcc" || wl.ScaleFactor != 2 || wl.Terminals != 8 {
		t.Fatalf("%+v", wl)
	}
	if len(wl.Works) != 2 {
		t.Fatalf("works = %d", len(wl.Works))
	}
	w := wl.Works[0]
	if w.Duration() != 60*time.Second {
		t.Fatalf("duration = %v", w.Duration())
	}
	tps, err := w.RateTPS()
	if err != nil || tps != 1000 {
		t.Fatalf("rate = %v %v", tps, err)
	}
	weights, err := w.MixWeights()
	if err != nil || len(weights) != 5 || weights[0] != 45 {
		t.Fatalf("weights = %v %v", weights, err)
	}
	if !w.ExponentialArrival() {
		t.Fatal("arrival")
	}
	if w.ThinkTime() != 5*time.Millisecond {
		t.Fatalf("think = %v", w.ThinkTime())
	}
	w2 := wl.Works[1]
	if !w2.Unlimited() {
		t.Fatal("unlimited")
	}
	if tps, _ := w2.RateTPS(); tps != 0 {
		t.Fatal("unlimited rate must be 0")
	}
	if w2.ExponentialArrival() {
		t.Fatal("default arrival must be uniform")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []string{
		`<parameters><dbtype>x</dbtype><works><work><time>1</time></work></works></parameters>`,                                               // no benchmark
		`<parameters><benchmark>b</benchmark><works><work><time>1</time></work></works></parameters>`,                                         // no dbtype
		`<parameters><benchmark>b</benchmark><dbtype>x</dbtype></parameters>`,                                                                 // no works
		`<parameters><benchmark>b</benchmark><dbtype>x</dbtype><works><work><time>0</time></work></works></parameters>`,                       // zero time
		`<parameters><benchmark>b</benchmark><dbtype>x</dbtype><works><work><time>1</time><rate>-5</rate></work></works></parameters>`,        // bad rate
		`<parameters><benchmark>b</benchmark><dbtype>x</dbtype><works><work><time>1</time><weights>a,b</weights></work></works></parameters>`, // bad weights
	}
	for i, xml := range bad {
		if _, err := Parse(strings.NewReader(xml)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	wl, err := Parse(strings.NewReader(
		`<parameters><benchmark>b</benchmark><dbtype>x</dbtype><works><work><time>1</time></work></works></parameters>`))
	if err != nil {
		t.Fatal(err)
	}
	if wl.ScaleFactor != 1 || wl.Terminals != 1 {
		t.Fatalf("defaults: %+v", wl)
	}
	w := wl.Works[0]
	if !w.Unlimited() {
		t.Fatal("empty rate should be unlimited")
	}
	ws, err := w.MixWeights()
	if err != nil || ws != nil {
		t.Fatal("empty weights should mean default mixture")
	}
}

func TestRoundTrip(t *testing.T) {
	wl, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	wl2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wl2.Benchmark != wl.Benchmark || len(wl2.Works) != len(wl.Works) || wl2.Works[0].Weights != wl.Works[0].Weights {
		t.Fatalf("round trip mismatch: %+v", wl2)
	}
}
