// Package config parses the XML workload configuration files of the
// testbed, mirroring OLTP-Bench's config.xml format: database target,
// scale factor, terminal (worker) count, and a list of execution phases
// ("works"), each with a target rate, a transaction mixture, and a duration.
package config

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Workload is one benchmark run description.
type Workload struct {
	XMLName xml.Name `xml:"parameters"`
	// Benchmark names the workload to run (e.g. "tpcc", "ycsb").
	Benchmark string `xml:"benchmark"`
	// DBType names the target DBMS personality (e.g. "gomvcc").
	DBType string `xml:"dbtype"`
	// ScaleFactor sizes the loaded database.
	ScaleFactor float64 `xml:"scalefactor"`
	// Terminals is the number of worker threads.
	Terminals int `xml:"terminals"`
	// Isolation is informational (the engines fix their isolation level).
	Isolation string `xml:"isolation"`
	// Works are the execution phases, in order.
	Works []Work `xml:"works>work"`
}

// Work is one execution phase.
type Work struct {
	// Time is the phase duration in seconds.
	Time float64 `xml:"time"`
	// Rate is the target rate in transactions/second, or "unlimited".
	Rate string `xml:"rate"`
	// Weights is the comma-separated transaction mixture (percent or
	// relative weights), one entry per transaction type.
	Weights string `xml:"weights"`
	// Arrival is "uniform" (default) or "exponential"/"poisson".
	Arrival string `xml:"arrival"`
	// ThinkTimeMS is the per-transaction worker think time in ms.
	ThinkTimeMS float64 `xml:"thinktime"`
}

// Duration returns the phase duration.
func (w Work) Duration() time.Duration {
	return time.Duration(w.Time * float64(time.Second))
}

// Unlimited reports whether the phase requests open-loop execution.
func (w Work) Unlimited() bool {
	r := strings.ToLower(strings.TrimSpace(w.Rate))
	return r == "" || r == "unlimited" || r == "disabled"
}

// RateTPS returns the target rate; 0 when unlimited.
func (w Work) RateTPS() (float64, error) {
	if w.Unlimited() {
		return 0, nil
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(w.Rate), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("config: invalid rate %q", w.Rate)
	}
	return v, nil
}

// MixWeights parses the Weights list.
func (w Work) MixWeights() ([]float64, error) {
	if strings.TrimSpace(w.Weights) == "" {
		return nil, nil // benchmark default mixture
	}
	parts := strings.Split(w.Weights, ",")
	out := make([]float64, len(parts))
	sum := 0.0
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("config: invalid weight %q", p)
		}
		out[i] = v
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("config: weights sum to zero")
	}
	return out, nil
}

// ExponentialArrival reports whether the phase uses exponential arrivals.
func (w Work) ExponentialArrival() bool {
	a := strings.ToLower(strings.TrimSpace(w.Arrival))
	return a == "exponential" || a == "poisson"
}

// ThinkTime returns the per-transaction think time.
func (w Work) ThinkTime() time.Duration {
	return time.Duration(w.ThinkTimeMS * float64(time.Millisecond))
}

// Parse reads a workload configuration from XML.
func Parse(r io.Reader) (*Workload, error) {
	var wl Workload
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&wl); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &wl, wl.Validate()
}

// ParseFile reads a workload configuration file.
func ParseFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore error-discard read-only config handle; close cannot lose data
	defer f.Close()
	return Parse(f)
}

// Validate checks the configuration for consistency.
func (wl *Workload) Validate() error {
	if wl.Benchmark == "" {
		return fmt.Errorf("config: benchmark is required")
	}
	if wl.DBType == "" {
		return fmt.Errorf("config: dbtype is required")
	}
	if wl.ScaleFactor <= 0 {
		wl.ScaleFactor = 1
	}
	if wl.Terminals <= 0 {
		wl.Terminals = 1
	}
	if len(wl.Works) == 0 {
		return fmt.Errorf("config: at least one work phase is required")
	}
	for i, w := range wl.Works {
		if w.Time <= 0 {
			return fmt.Errorf("config: work %d has non-positive time", i+1)
		}
		if _, err := w.RateTPS(); err != nil {
			return fmt.Errorf("config: work %d: %w", i+1, err)
		}
		if _, err := w.MixWeights(); err != nil {
			return fmt.Errorf("config: work %d: %w", i+1, err)
		}
	}
	return nil
}

// Write serders the workload back to XML (used by tooling to emit example
// configurations).
func (wl *Workload) Write(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(wl); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
