// Package dbdriver is the JDBC-like access layer between the benchmark
// framework and a target DBMS. OLTP-Bench drives every system through the
// same connection/prepared-statement surface; here the targets are the
// embedded engine's personalities, each configured to behave like a
// different class of DBMS (coarse-lock, row-lock, MVCC).
package dbdriver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"benchpress/internal/sqldb"
	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
	"benchpress/internal/wal"
)

// Personality describes one target DBMS configuration.
type Personality struct {
	// Name is the registry key (e.g. "gomvcc").
	Name string
	// Description is shown in tooling output.
	Description string
	// Dialect names the SQL dialect used for statement resolution.
	Dialect string
	// Mode selects the concurrency-control engine.
	Mode txn.Mode
	// WALPolicy and GroupCommitInterval emulate the commit durability cost.
	WALPolicy           wal.SyncPolicy
	GroupCommitInterval time.Duration
	// CommitDelay adds fixed per-commit latency.
	CommitDelay time.Duration
	// VacuumInterval paces the engine's online background vacuum (zero
	// disables it).
	VacuumInterval time.Duration
	// DataDir, when non-empty, makes the instance disk-resident: committed
	// rows live in a slotted-page heap behind a buffer pool with ARIES-style
	// recovery (sqldb.OpenDisk). Empty keeps the all-RAM fast path.
	DataDir string
	// BufferPoolPages caps the buffer pool's 4 KiB frames in disk mode
	// (zero uses the engine default).
	BufferPoolPages int
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Personality{}
)

// Register installs a personality. Built-ins are registered at init; tests
// and experiments may add more.
func Register(p Personality) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[strings.ToLower(p.Name)] = p
}

// Lookup returns a registered personality.
func Lookup(name string) (Personality, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[strings.ToLower(name)]
	if !ok {
		return Personality{}, fmt.Errorf("dbdriver: unknown DBMS personality %q (known: %s)",
			name, strings.Join(names(), ", "))
	}
	return p, nil
}

// Names lists registered personalities, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return names()
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// The three built-in targets. Their distinct concurrency control and
	// commit-latency profiles reproduce the demo's observation that
	// different DBMSs respond differently to the same dynamic load.
	Register(Personality{
		Name:        "goserial",
		Description: "coarse-grained engine: one global database lock (Derby-like level)",
		Dialect:     "derby",
		Mode:        txn.Serial,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: time.Millisecond,
		VacuumInterval: 5 * time.Millisecond,
	})
	Register(Personality{
		Name:        "golock",
		Description: "row-level strict 2PL with wait-die (MySQL/InnoDB-like level)",
		Dialect:     "mysql",
		Mode:        txn.Locking,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: 500 * time.Microsecond,
		VacuumInterval: 5 * time.Millisecond,
	})
	Register(Personality{
		Name:        "gomvcc",
		Description: "snapshot-isolation MVCC, first-updater-wins (PostgreSQL-like level)",
		Dialect:     "postgres",
		Mode:        txn.MVCC,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: 200 * time.Microsecond,
		VacuumInterval: 5 * time.Millisecond,
	})
}

// SessionBackend is the minimal session surface a Conn drives when the
// engine lives in another process: statement execution plus transaction
// control. benchpress/internal/cluster implements it over the binary engine
// wire; the embedded engine keeps its direct *sqldb.Session path and never
// pays the indirection.
type SessionBackend interface {
	// Exec executes one statement (autocommitted outside a transaction).
	Exec(sql string, args []any) (*exec.Result, error)
	// Query executes one statement expected to return rows.
	Query(sql string, args []any) (*exec.Result, error)
	// Begin starts an explicit transaction, read-only when asked.
	Begin(readonly bool) error
	// Commit commits the open transaction.
	Commit() error
	// Rollback aborts the open transaction.
	Rollback() error
	// InTxn reports whether an explicit transaction is open.
	InTxn() bool
	// Close releases the session.
	Close() error
}

// Dialer opens sessions on a remote engine process.
type Dialer interface {
	// Dial opens one new session.
	Dial() (SessionBackend, error)
	// Personality describes the remote engine (name, dialect).
	Personality() Personality
	// Close releases the dialer's resources.
	Close()
}

// DB is one open database instance.
type DB struct {
	p      Personality
	eng    *sqldb.Engine
	remote Dialer
}

// Open creates a fresh database instance of the named personality.
func Open(name string) (*DB, error) {
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return OpenWith(p)
}

// OpenWith creates a database instance from an explicit personality. A
// personality with a DataDir opens disk-resident, which can fail (device or
// recovery errors); the all-RAM path never does.
func OpenWith(p Personality) (*DB, error) {
	cfg := sqldb.Config{
		Name:                p.Name,
		Mode:                p.Mode,
		WALPolicy:           p.WALPolicy,
		GroupCommitInterval: p.GroupCommitInterval,
		CommitDelay:         p.CommitDelay,
		VacuumInterval:      p.VacuumInterval,
	}
	if p.DataDir == "" {
		return &DB{p: p, eng: sqldb.Open(cfg)}, nil
	}
	cfg.DataDir = p.DataDir
	cfg.BufferPoolPages = p.BufferPoolPages
	eng, err := sqldb.OpenDisk(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{p: p, eng: eng}, nil
}

// Wrap adopts an already-open engine under the DB/Conn surface. The
// crash-torture harness uses it to run the conformance workload against an
// engine it recovered by hand from a surviving disk image; Close closes the
// adopted engine.
func Wrap(p Personality, eng *sqldb.Engine) *DB {
	return &DB{p: p, eng: eng}
}

// OpenRemote wraps a remote engine process behind the DB/Conn surface: every
// Connect dials one session over d. Engine() and TxnManager() return nil for
// remote instances — maintenance and harness hooks only exist in-process.
func OpenRemote(d Dialer) *DB {
	return &DB{p: d.Personality(), remote: d}
}

// Remote reports whether this instance drives an engine in another process.
func (db *DB) Remote() bool { return db.remote != nil }

// Personality returns the instance's configuration.
func (db *DB) Personality() Personality { return db.p }

// Engine exposes the underlying engine for maintenance operations
// (vacuum, truncate-all) and statistics. It is nil for remote instances.
func (db *DB) Engine() *sqldb.Engine { return db.eng }

// TxnManager exposes the engine's transaction manager so test harnesses can
// toggle non-blocking mode and invariant-mutation switches. It is nil for
// remote instances.
func (db *DB) TxnManager() *txn.Manager {
	if db.eng == nil {
		return nil
	}
	return db.eng.TxnManager()
}

// Close releases engine resources.
func (db *DB) Close() {
	if db.remote != nil {
		db.remote.Close()
		return
	}
	db.eng.Close()
}

// Connect opens a new connection. Connections are not safe for concurrent
// use; open one per worker thread, as OLTP-Bench does with JDBC. For remote
// instances a dial failure is deferred: the connection is returned broken
// and every operation reports the dial error, so per-transaction error
// accounting (not a launch-time crash) absorbs an engine that is briefly
// unreachable.
func (db *DB) Connect() *Conn {
	if db.remote != nil {
		sess, err := db.remote.Dial()
		return &Conn{db: db, rem: sess, remErr: err}
	}
	return &Conn{db: db, sess: db.eng.Session()}
}

// Conn is one connection (the JDBC Connection analog). Exactly one of sess
// (embedded) or rem (remote) is set.
type Conn struct {
	db     *DB
	sess   *sqldb.Session
	rem    SessionBackend
	remErr error
	// argObs, when set, receives the SQL and arguments of every Exec/Query
	// issued through this connection (capture mode's parameter sampler).
	// Statements executed through a prepared Stmt handle bypass it. Conn is
	// single-goroutine by contract, so a plain field suffices.
	argObs func(sql string, args []any)
}

// DB returns the owning database.
func (c *Conn) DB() *DB { return c.db }

// SetArgObserver installs (or, with nil, removes) a statement-argument
// observer. The workload manager's capture mode uses it to sample the
// parameter distributions of executed transactions.
func (c *Conn) SetArgObserver(f func(sql string, args []any)) { c.argObs = f }

// remote returns the remote session, surfacing a deferred dial failure.
func (c *Conn) remote() (SessionBackend, error) {
	if c.rem == nil {
		return nil, c.remErr
	}
	return c.rem, nil
}

// Exec executes a statement, autocommitted unless a transaction is open.
func (c *Conn) Exec(sql string, args ...any) (*exec.Result, error) {
	if c.argObs != nil {
		c.argObs(sql, args)
	}
	if c.sess != nil {
		return c.sess.Exec(sql, args...)
	}
	rem, err := c.remote()
	if err != nil {
		return nil, err
	}
	return rem.Exec(sql, args)
}

// Query executes a statement expected to return rows.
func (c *Conn) Query(sql string, args ...any) (*exec.Result, error) {
	if c.argObs != nil {
		c.argObs(sql, args)
	}
	if c.sess != nil {
		return c.sess.Query(sql, args...)
	}
	rem, err := c.remote()
	if err != nil {
		return nil, err
	}
	return rem.Query(sql, args)
}

// QueryRow executes and returns the first row (nil if none).
func (c *Conn) QueryRow(sql string, args ...any) ([]sqlval.Value, error) {
	if c.sess != nil {
		if c.argObs != nil {
			c.argObs(sql, args)
		}
		return c.sess.QueryRow(sql, args...)
	}
	res, err := c.Query(sql, args...)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return res.Rows[0], nil
}

// Begin starts an explicit transaction.
func (c *Conn) Begin() error {
	if c.sess != nil {
		return c.sess.Begin()
	}
	rem, err := c.remote()
	if err != nil {
		return err
	}
	return rem.Begin(false)
}

// BeginReadOnly starts an explicit transaction declared read-only.
func (c *Conn) BeginReadOnly() error {
	if c.sess != nil {
		return c.sess.BeginReadOnly()
	}
	rem, err := c.remote()
	if err != nil {
		return err
	}
	return rem.Begin(true)
}

// Commit commits the open transaction.
func (c *Conn) Commit() error {
	if c.sess != nil {
		return c.sess.Commit()
	}
	rem, err := c.remote()
	if err != nil {
		return err
	}
	return rem.Commit()
}

// Rollback aborts the open transaction.
func (c *Conn) Rollback() error {
	if c.sess != nil {
		return c.sess.Rollback()
	}
	rem, err := c.remote()
	if err != nil {
		return err
	}
	return rem.Rollback()
}

// InTxn reports whether an explicit transaction is open.
func (c *Conn) InTxn() bool {
	if c.sess != nil {
		return c.sess.InTxn()
	}
	return c.rem != nil && c.rem.InTxn()
}

// TxnInfo returns identity and outcome metadata for the connection's current
// transaction (or the last finished one). The consistency harness uses it to
// map executed operations onto engine transaction ids and commit timestamps.
// Remote connections report a zero Info — the harness only drives embedded
// engines.
func (c *Conn) TxnInfo() txn.Info {
	if c.sess != nil {
		return c.sess.TxnInfo()
	}
	return txn.Info{}
}

// Prepare compiles a statement for repeated execution on this connection.
// On a remote connection preparation is client-side only: the statement
// re-ships its SQL per execution and the server's statement cache does the
// compile-once work.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if c.sess == nil {
		if _, err := c.remote(); err != nil {
			return nil, err
		}
		return &Stmt{conn: c, sql: sql}, nil
	}
	st, err := c.sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// Close aborts any open transaction and releases the connection, returning
// the rollback error if that abort fails so callers can surface an engine
// fault instead of losing it.
func (c *Conn) Close() error {
	if c.sess != nil {
		if c.sess.InTxn() {
			return c.sess.Rollback()
		}
		return nil
	}
	if c.rem != nil {
		return c.rem.Close()
	}
	return nil
}

// Stmt is a prepared statement (the JDBC PreparedStatement analog). For
// remote connections it is a client-side handle that re-ships its SQL.
type Stmt struct {
	st   *sqldb.Stmt
	conn *Conn
	sql  string
}

// Exec runs the prepared statement.
func (s *Stmt) Exec(args ...any) (*exec.Result, error) {
	if s.st == nil && s.conn != nil {
		return s.conn.Exec(s.sql, args...)
	}
	return s.st.Exec(args...)
}

// Query runs the prepared statement, returning rows.
func (s *Stmt) Query(args ...any) (*exec.Result, error) { return s.Exec(args...) }

// Close releases the prepared statement. The engine's statement cache owns
// the compiled plan, so closing only severs the session reference, but
// holders of long-lived statements should still release them
// deterministically; use after Close is a programming error and panics.
func (s *Stmt) Close() { s.st = nil; s.conn = nil }

// IsRetryable reports whether an error is a concurrency abort that the
// caller should retry with a fresh transaction.
func IsRetryable(err error) bool { return txn.IsRetryable(err) }
