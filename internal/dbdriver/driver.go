// Package dbdriver is the JDBC-like access layer between the benchmark
// framework and a target DBMS. OLTP-Bench drives every system through the
// same connection/prepared-statement surface; here the targets are the
// embedded engine's personalities, each configured to behave like a
// different class of DBMS (coarse-lock, row-lock, MVCC).
package dbdriver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"benchpress/internal/sqldb"
	"benchpress/internal/sqldb/exec"
	"benchpress/internal/sqldb/txn"
	"benchpress/internal/sqlval"
	"benchpress/internal/wal"
)

// Personality describes one target DBMS configuration.
type Personality struct {
	// Name is the registry key (e.g. "gomvcc").
	Name string
	// Description is shown in tooling output.
	Description string
	// Dialect names the SQL dialect used for statement resolution.
	Dialect string
	// Mode selects the concurrency-control engine.
	Mode txn.Mode
	// WALPolicy and GroupCommitInterval emulate the commit durability cost.
	WALPolicy           wal.SyncPolicy
	GroupCommitInterval time.Duration
	// CommitDelay adds fixed per-commit latency.
	CommitDelay time.Duration
	// VacuumInterval paces the engine's online background vacuum (zero
	// disables it).
	VacuumInterval time.Duration
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Personality{}
)

// Register installs a personality. Built-ins are registered at init; tests
// and experiments may add more.
func Register(p Personality) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[strings.ToLower(p.Name)] = p
}

// Lookup returns a registered personality.
func Lookup(name string) (Personality, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[strings.ToLower(name)]
	if !ok {
		return Personality{}, fmt.Errorf("dbdriver: unknown DBMS personality %q (known: %s)",
			name, strings.Join(names(), ", "))
	}
	return p, nil
}

// Names lists registered personalities, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return names()
}

func names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	// The three built-in targets. Their distinct concurrency control and
	// commit-latency profiles reproduce the demo's observation that
	// different DBMSs respond differently to the same dynamic load.
	Register(Personality{
		Name:        "goserial",
		Description: "coarse-grained engine: one global database lock (Derby-like level)",
		Dialect:     "derby",
		Mode:        txn.Serial,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: time.Millisecond,
		VacuumInterval: 5 * time.Millisecond,
	})
	Register(Personality{
		Name:        "golock",
		Description: "row-level strict 2PL with wait-die (MySQL/InnoDB-like level)",
		Dialect:     "mysql",
		Mode:        txn.Locking,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: 500 * time.Microsecond,
		VacuumInterval: 5 * time.Millisecond,
	})
	Register(Personality{
		Name:        "gomvcc",
		Description: "snapshot-isolation MVCC, first-updater-wins (PostgreSQL-like level)",
		Dialect:     "postgres",
		Mode:        txn.MVCC,
		WALPolicy:   wal.SyncGroup, GroupCommitInterval: 200 * time.Microsecond,
		VacuumInterval: 5 * time.Millisecond,
	})
}

// DB is one open database instance.
type DB struct {
	p   Personality
	eng *sqldb.Engine
}

// Open creates a fresh database instance of the named personality.
func Open(name string) (*DB, error) {
	p, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return OpenWith(p), nil
}

// OpenWith creates a database instance from an explicit personality.
func OpenWith(p Personality) *DB {
	eng := sqldb.Open(sqldb.Config{
		Name:                p.Name,
		Mode:                p.Mode,
		WALPolicy:           p.WALPolicy,
		GroupCommitInterval: p.GroupCommitInterval,
		CommitDelay:         p.CommitDelay,
		VacuumInterval:      p.VacuumInterval,
	})
	return &DB{p: p, eng: eng}
}

// Personality returns the instance's configuration.
func (db *DB) Personality() Personality { return db.p }

// Engine exposes the underlying engine for maintenance operations
// (vacuum, truncate-all) and statistics.
func (db *DB) Engine() *sqldb.Engine { return db.eng }

// TxnManager exposes the engine's transaction manager so test harnesses can
// toggle non-blocking mode and invariant-mutation switches.
func (db *DB) TxnManager() *txn.Manager { return db.eng.TxnManager() }

// Close releases engine resources.
func (db *DB) Close() { db.eng.Close() }

// Connect opens a new connection. Connections are not safe for concurrent
// use; open one per worker thread, as OLTP-Bench does with JDBC.
func (db *DB) Connect() *Conn {
	return &Conn{db: db, sess: db.eng.Session()}
}

// Conn is one connection (the JDBC Connection analog).
type Conn struct {
	db   *DB
	sess *sqldb.Session
}

// DB returns the owning database.
func (c *Conn) DB() *DB { return c.db }

// Exec executes a statement, autocommitted unless a transaction is open.
func (c *Conn) Exec(sql string, args ...any) (*exec.Result, error) {
	return c.sess.Exec(sql, args...)
}

// Query executes a statement expected to return rows.
func (c *Conn) Query(sql string, args ...any) (*exec.Result, error) {
	return c.sess.Query(sql, args...)
}

// QueryRow executes and returns the first row (nil if none).
func (c *Conn) QueryRow(sql string, args ...any) ([]sqlval.Value, error) {
	return c.sess.QueryRow(sql, args...)
}

// Begin starts an explicit transaction.
func (c *Conn) Begin() error { return c.sess.Begin() }

// BeginReadOnly starts an explicit transaction declared read-only.
func (c *Conn) BeginReadOnly() error { return c.sess.BeginReadOnly() }

// Commit commits the open transaction.
func (c *Conn) Commit() error { return c.sess.Commit() }

// Rollback aborts the open transaction.
func (c *Conn) Rollback() error { return c.sess.Rollback() }

// InTxn reports whether an explicit transaction is open.
func (c *Conn) InTxn() bool { return c.sess.InTxn() }

// TxnInfo returns identity and outcome metadata for the connection's current
// transaction (or the last finished one). The consistency harness uses it to
// map executed operations onto engine transaction ids and commit timestamps.
func (c *Conn) TxnInfo() txn.Info { return c.sess.TxnInfo() }

// Prepare compiles a statement for repeated execution on this connection.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	st, err := c.sess.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// Close aborts any open transaction and releases the connection, returning
// the rollback error if that abort fails so callers can surface an engine
// fault instead of losing it.
func (c *Conn) Close() error {
	if c.sess.InTxn() {
		return c.sess.Rollback()
	}
	return nil
}

// Stmt is a prepared statement (the JDBC PreparedStatement analog).
type Stmt struct {
	st *sqldb.Stmt
}

// Exec runs the prepared statement.
func (s *Stmt) Exec(args ...any) (*exec.Result, error) { return s.st.Exec(args...) }

// Query runs the prepared statement, returning rows.
func (s *Stmt) Query(args ...any) (*exec.Result, error) { return s.st.Exec(args...) }

// Close releases the prepared statement. The engine's statement cache owns
// the compiled plan, so closing only severs the session reference, but
// holders of long-lived statements should still release them
// deterministically; use after Close is a programming error and panics.
func (s *Stmt) Close() { s.st = nil }

// IsRetryable reports whether an error is a concurrency abort that the
// caller should retry with a fresh transaction.
func IsRetryable(err error) bool { return txn.IsRetryable(err) }
