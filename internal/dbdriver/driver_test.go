package dbdriver

import (
	"testing"
	"time"

	"benchpress/internal/sqldb/txn"
	"benchpress/internal/wal"
)

func TestBuiltinPersonalities(t *testing.T) {
	for _, name := range []string{"goserial", "golock", "gomvcc"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("name mismatch: %q", p.Name)
		}
	}
	if _, err := Lookup("oracle"); err == nil {
		t.Fatal("unknown personality resolved")
	}
	if len(Names()) < 3 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestOpenConnectExec(t *testing.T) {
	for _, name := range []string{"goserial", "golock", "gomvcc"} {
		t.Run(name, func(t *testing.T) {
			db, err := Open(name)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			c := db.Connect()
			defer c.Close()
			if _, err := c.Exec("CREATE TABLE kv (k INT NOT NULL, v VARCHAR(20), PRIMARY KEY (k))"); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", 1, "one"); err != nil {
				t.Fatal(err)
			}
			row, err := c.QueryRow("SELECT v FROM kv WHERE k = ?", 1)
			if err != nil || row == nil || row[0].Str() != "one" {
				t.Fatalf("row=%v err=%v", row, err)
			}
		})
	}
}

func TestTransactionsThroughDriver(t *testing.T) {
	db, _ := Open("gomvcc")
	defer db.Close()
	c := db.Connect()
	c.Exec("CREATE TABLE t (a INT NOT NULL, b INT, PRIMARY KEY (a))")
	c.Exec("INSERT INTO t (a, b) VALUES (1, 10)")

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if !c.InTxn() {
		t.Fatal("InTxn = false after Begin")
	}
	c.Exec("UPDATE t SET b = 99 WHERE a = 1")
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	row, _ := c.QueryRow("SELECT b FROM t WHERE a = 1")
	if row[0].Int() != 10 {
		t.Fatalf("rollback failed: %v", row)
	}
}

func TestPreparedStatements(t *testing.T) {
	db, _ := Open("golock")
	defer db.Close()
	c := db.Connect()
	c.Exec("CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))")
	ins, err := c.Prepare("INSERT INTO t (a) VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ins.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	cnt, _ := c.QueryRow("SELECT COUNT(*) FROM t")
	if cnt[0].Int() != 10 {
		t.Fatalf("count = %v", cnt)
	}
}

func TestConnCloseAbortsTxn(t *testing.T) {
	db, _ := Open("gomvcc")
	defer db.Close()
	c := db.Connect()
	c.Exec("CREATE TABLE t (a INT NOT NULL, b INT, PRIMARY KEY (a))")
	c.Exec("INSERT INTO t (a, b) VALUES (1, 1)")
	c.Begin()
	c.Exec("UPDATE t SET b = 2 WHERE a = 1")
	c.Close() // must roll back, releasing the claim

	c2 := db.Connect()
	if _, err := c2.Exec("UPDATE t SET b = 3 WHERE a = 1"); err != nil {
		t.Fatalf("claim not released by Close: %v", err)
	}
}

func TestRegisterCustomPersonality(t *testing.T) {
	Register(Personality{
		Name:      "gotest-nosync",
		Dialect:   "gosql",
		Mode:      txn.MVCC,
		WALPolicy: wal.SyncNone,
	})
	db, err := Open("gotest-nosync")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Engine().WAL() != nil {
		t.Fatal("nosync personality should not allocate a WAL")
	}
}

func TestCommitDelayPersonality(t *testing.T) {
	Register(Personality{
		Name:        "gotest-slow",
		Dialect:     "gosql",
		Mode:        txn.MVCC,
		CommitDelay: 2 * time.Millisecond,
	})
	db, _ := Open("gotest-slow")
	defer db.Close()
	c := db.Connect()
	c.Exec("CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a))")
	start := time.Now()
	c.Exec("INSERT INTO t (a) VALUES (1)")
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("commit took %v, expected >= 2ms delay", d)
	}
}

func TestIsRetryablePassthrough(t *testing.T) {
	if !IsRetryable(txn.ErrWriteConflict) || !IsRetryable(txn.ErrDeadlock) {
		t.Fatal("retryable detection broken")
	}
}
