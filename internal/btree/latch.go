package btree

import "sync"

// Latched pairs a Tree with the latch that guards it. The Tree itself is
// deliberately unsynchronized (see package comment); storage layers that need
// per-index concurrency wrap each tree in a Latched and take the latch around
// every call. Embedding keeps call sites short (lt.Lock(); lt.Insert(...)),
// and keeps the locking discipline visible at each use instead of hidden
// behind the tree API.
type Latched struct {
	sync.RWMutex
	Tree
}

// NewLatched returns an empty latched tree. The Tree zero value is not usable
// (New initializes the root), so Latched values must come from here.
func NewLatched() *Latched {
	return &Latched{Tree: *New()}
}
