// Package btree implements an in-memory B+tree keyed by composite SQL values.
//
// The tree maps a composite key ([]sqlval.Value) to a single int64 payload
// (a row id in the storage layer). Non-unique secondary indexes achieve set
// semantics by appending the row id to the key, which keeps every key unique
// while preserving order on the indexed prefix.
//
// The tree is NOT internally synchronized; the storage layer guards each
// index with its own mutex so that lock granularity stays under the control
// of the concurrency-control engine.
package btree

import (
	"benchpress/internal/sqlval"
)

// degree is the maximum number of children of an interior node. 32 keeps
// nodes within a couple of cache lines of Value headers while holding tree
// height at 4-5 for the table sizes the benchmarks load.
const degree = 32

// Key is a composite index key.
type Key = []sqlval.Value

type leaf struct {
	keys [][]sqlval.Value
	vals []int64
	next *leaf
	prev *leaf
}

type interior struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]sqlval.Value
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()     {}
func (*interior) isNode() {}

// Tree is an in-memory B+tree.
type Tree struct {
	root  node
	size  int
	first *leaf // leftmost leaf, for full ascending scans
	last  *leaf // rightmost leaf, for descending scans
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l, last: l}
}

// Len reports the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the payload stored under key, if present.
func (t *Tree) Get(key Key) (int64, bool) {
	l, i := t.findLeaf(key)
	if i < len(l.keys) && sqlval.CompareRows(l.keys[i], key) == 0 {
		return l.vals[i], true
	}
	return 0, false
}

// Insert stores val under key, replacing any previous payload. It reports
// whether the key was newly inserted (false means replaced).
func (t *Tree) Insert(key Key, val int64) bool {
	newChild, splitKey, inserted := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &interior{
			keys:     [][]sqlval.Value{splitKey},
			children: []node{t.root, newChild},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// Delete removes key from the tree, reporting whether it was present.
// Underfull nodes are tolerated (no rebalancing): workloads here are
// insert-heavy and deletes are comparatively rare, so the tree trades
// worst-case density for simpler, faster common paths. Empty leaves are
// unlinked from the scan chain lazily during iteration.
func (t *Tree) Delete(key Key) bool {
	l, i := t.findLeaf(key)
	if i >= len(l.keys) || sqlval.CompareRows(l.keys[i], key) != 0 {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size--
	return true
}

// AscendRange calls fn for each entry with from <= key <= to in ascending
// order. A nil from starts at the smallest key; a nil to ends at the largest.
// Iteration stops early when fn returns false.
func (t *Tree) AscendRange(from, to Key, fn func(key Key, val int64) bool) {
	var l *leaf
	var i int
	if from == nil {
		l, i = t.first, 0
	} else {
		l, i = t.findLeaf(from)
	}
	for l != nil {
		for ; i < len(l.keys); i++ {
			if to != nil && sqlval.CompareRows(l.keys[i], to) > 0 {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// DescendRange calls fn for each entry with from >= key >= to in descending
// order. A nil from starts at the largest key; a nil to ends at the smallest.
func (t *Tree) DescendRange(from, to Key, fn func(key Key, val int64) bool) {
	var l *leaf
	var i int
	if from == nil {
		l = t.last
		i = len(l.keys) - 1
	} else {
		l, i = t.findLeaf(from)
		// findLeaf positions at the first key >= from; step back to the
		// last key <= from.
		if i >= len(l.keys) || sqlval.CompareRows(l.keys[i], from) > 0 {
			i--
		}
	}
	for l != nil {
		for ; i >= 0; i-- {
			if i >= len(l.keys) {
				continue
			}
			if to != nil && sqlval.CompareRows(l.keys[i], to) < 0 {
				return
			}
			if !fn(l.keys[i], l.vals[i]) {
				return
			}
		}
		l = l.prev
		if l != nil {
			i = len(l.keys) - 1
		}
	}
}

// AscendPrefix calls fn for each entry whose key begins with prefix, in
// ascending order. Useful for non-unique indexes where the physical key is
// (indexed columns..., rowid).
func (t *Tree) AscendPrefix(prefix Key, fn func(key Key, val int64) bool) {
	t.AscendRange(prefix, nil, func(key Key, val int64) bool {
		if !hasPrefix(key, prefix) {
			return false
		}
		return fn(key, val)
	})
}

func hasPrefix(key, prefix Key) bool {
	if len(key) < len(prefix) {
		return false
	}
	for i := range prefix {
		if sqlval.Compare(key[i], prefix[i]) != 0 {
			return false
		}
	}
	return true
}

// findLeaf walks to the leaf that would contain key and returns it together
// with the index of the first entry >= key within that leaf.
func (t *Tree) findLeaf(key Key) (*leaf, int) {
	n := t.root
	for {
		switch x := n.(type) {
		case *interior:
			i := lowerBoundStrict(x.keys, key)
			n = x.children[i]
		case *leaf:
			return x, lowerBound(x.keys, key)
		}
	}
}

// lowerBound returns the index of the first element >= key.
func lowerBound(keys [][]sqlval.Value, key Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if sqlval.CompareRows(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBoundStrict returns the index of the first element > key; used for
// routing in interior nodes where keys[i] is the minimum of children[i+1].
func lowerBoundStrict(keys [][]sqlval.Value, key Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if sqlval.CompareRows(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert recursively inserts into n. When n splits, it returns the new right
// sibling and the key separating the halves.
func (t *Tree) insert(n node, key Key, val int64) (split node, splitKey Key, inserted bool) {
	switch x := n.(type) {
	case *leaf:
		i := lowerBound(x.keys, key)
		if i < len(x.keys) && sqlval.CompareRows(x.keys[i], key) == 0 {
			x.vals[i] = val
			return nil, nil, false
		}
		x.keys = append(x.keys, nil)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = key
		x.vals = append(x.vals, 0)
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = val
		if len(x.keys) < degree {
			return nil, nil, true
		}
		// Split the leaf in half.
		mid := len(x.keys) / 2
		right := &leaf{
			keys: append([][]sqlval.Value(nil), x.keys[mid:]...),
			vals: append([]int64(nil), x.vals[mid:]...),
			next: x.next,
			prev: x,
		}
		if x.next != nil {
			x.next.prev = right
		} else {
			t.last = right
		}
		x.keys = x.keys[:mid:mid]
		x.vals = x.vals[:mid:mid]
		x.next = right
		return right, right.keys[0], true
	case *interior:
		i := lowerBoundStrict(x.keys, key)
		child, childKey, ins := t.insert(x.children[i], key, val)
		if child == nil {
			return nil, nil, ins
		}
		x.keys = append(x.keys, nil)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = childKey
		x.children = append(x.children, nil)
		copy(x.children[i+2:], x.children[i+1:])
		x.children[i+1] = child
		if len(x.children) <= degree {
			return nil, nil, ins
		}
		// Split the interior node; the middle key moves up.
		mid := len(x.keys) / 2
		upKey := x.keys[mid]
		right := &interior{
			keys:     append([][]sqlval.Value(nil), x.keys[mid+1:]...),
			children: append([]node(nil), x.children[mid+1:]...),
		}
		x.keys = x.keys[:mid:mid]
		x.children = x.children[: mid+1 : mid+1]
		return right, upKey, ins
	}
	return nil, nil, false
}
