package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"benchpress/internal/sqlval"
)

func intKey(vs ...int64) Key {
	k := make(Key, len(vs))
	for i, v := range vs {
		k[i] = sqlval.NewInt(v)
	}
	return k
}

func TestInsertGet(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		if !tr.Insert(intKey(i), i*10) {
			t.Fatalf("Insert(%d) reported replace on fresh key", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len() = %d, want 1000", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		v, ok := tr.Get(intKey(i))
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", i, v, ok, i*10)
		}
	}
	if _, ok := tr.Get(intKey(1000)); ok {
		t.Fatal("Get(1000) found a missing key")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New()
	tr.Insert(intKey(7), 1)
	if tr.Insert(intKey(7), 2) {
		t.Fatal("second Insert of same key reported fresh insert")
	}
	if v, _ := tr.Get(intKey(7)); v != 2 {
		t.Fatalf("Get = %d, want 2 after replace", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := int64(0); i < 500; i++ {
		tr.Insert(intKey(i), i)
	}
	for i := int64(0); i < 500; i += 2 {
		if !tr.Delete(intKey(i)) {
			t.Fatalf("Delete(%d) reported missing", i)
		}
	}
	if tr.Delete(intKey(0)) {
		t.Fatal("Delete of already-deleted key reported present")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d, want 250", tr.Len())
	}
	for i := int64(0); i < 500; i++ {
		_, ok := tr.Get(intKey(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(intKey(i), i)
	}
	var got []int64
	tr.AscendRange(intKey(10), intKey(20), func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("AscendRange[10,20] = %v", got)
	}
	got = got[:0]
	tr.AscendRange(nil, intKey(3), func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("AscendRange[nil,3] = %v", got)
	}
	// Early stop.
	n := 0
	tr.AscendRange(nil, nil, func(k Key, v int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestDescendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(intKey(i), i)
	}
	var got []int64
	tr.DescendRange(intKey(20), intKey(10), func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 11 || got[0] != 20 || got[10] != 10 {
		t.Fatalf("DescendRange[20,10] = %v", got)
	}
	got = got[:0]
	tr.DescendRange(nil, nil, func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 || got[0] != 99 || got[99] != 0 {
		t.Fatalf("full descend wrong: len=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
	// A from-key that is between entries should start at the previous entry.
	tr2 := New()
	for i := int64(0); i < 100; i += 10 {
		tr2.Insert(intKey(i), i)
	}
	got = got[:0]
	tr2.DescendRange(intKey(35), nil, func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) == 0 || got[0] != 30 {
		t.Fatalf("DescendRange from between-keys start = %v, want first 30", got)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	// Non-unique index simulation: (user, rowid) -> rowid.
	for user := int64(0); user < 10; user++ {
		for r := int64(0); r < 5; r++ {
			rowid := user*100 + r
			tr.Insert(intKey(user, rowid), rowid)
		}
	}
	var got []int64
	tr.AscendPrefix(intKey(3), func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("AscendPrefix(3) returned %d entries, want 5", len(got))
	}
	for i, v := range got {
		if v != 300+int64(i) {
			t.Fatalf("AscendPrefix(3)[%d] = %d", i, v)
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New()
	ref := map[int64]int64{}
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int63()
			tr.Insert(intKey(k), v)
			ref[k] = v
		case 2:
			delete(ref, k)
			tr.Delete(intKey(k))
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	var keys []int64
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	tr.AscendRange(nil, nil, func(k Key, v int64) bool {
		if i >= len(keys) {
			t.Fatalf("scan returned extra key %v", k)
		}
		if k[0].Int() != keys[i] || v != ref[keys[i]] {
			t.Fatalf("scan[%d] = (%d,%d), want (%d,%d)", i, k[0].Int(), v, keys[i], ref[keys[i]])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", i, len(keys))
	}
}

// Property: for any set of keys, an ascending full scan yields them sorted
// and descending yields the reverse.
func TestScanOrderProperty(t *testing.T) {
	prop := func(raw []int64) bool {
		tr := New()
		uniq := map[int64]bool{}
		for _, k := range raw {
			uniq[k] = true
			tr.Insert(intKey(k), k)
		}
		var asc []int64
		tr.AscendRange(nil, nil, func(k Key, v int64) bool {
			asc = append(asc, v)
			return true
		})
		if len(asc) != len(uniq) {
			return false
		}
		for i := 1; i < len(asc); i++ {
			if asc[i-1] >= asc[i] {
				return false
			}
		}
		var desc []int64
		tr.DescendRange(nil, nil, func(k Key, v int64) bool {
			desc = append(desc, v)
			return true
		})
		if len(desc) != len(asc) {
			return false
		}
		for i := range desc {
			if desc[i] != asc[len(asc)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: composite string keys order lexicographically by column.
func TestCompositeKeyOrderProperty(t *testing.T) {
	prop := func(pairs []struct{ A, B int8 }) bool {
		tr := New()
		type pk struct{ a, b int8 }
		uniq := map[pk]bool{}
		for _, p := range pairs {
			uniq[pk{p.A, p.B}] = true
			tr.Insert(intKey(int64(p.A), int64(p.B)), 0)
		}
		prev := Key(nil)
		ok := true
		n := 0
		tr.AscendRange(nil, nil, func(k Key, v int64) bool {
			n++
			if prev != nil && sqlval.CompareRows(prev, k) >= 0 {
				ok = false
				return false
			}
			prev = append(Key(nil), k...)
			return true
		})
		return ok && n == len(uniq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(intKey(int64(i)), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(intKey(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(intKey(int64(i % 100000)))
	}
}
